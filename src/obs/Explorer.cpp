//===- Explorer.cpp - Offline search-explorer HTML generator ---------------==//

#include "obs/Explorer.h"

#include <sstream>

using namespace seminal;
using namespace seminal::obs;

namespace {

/// Serializes the span stream as a JSON array (microsecond timestamps,
/// attrs flattened into one object per event).
void writeEventsJson(std::ostream &OS, const std::vector<TraceEvent> &Events) {
  OS << "[";
  for (size_t I = 0; I < Events.size(); ++I) {
    const TraceEvent &E = Events[I];
    if (I)
      OS << ",";
    OS << "{\"id\":" << E.Id << ",\"parent\":" << E.Parent
       << ",\"kind\":\"" << spanKindName(E.Kind) << "\",\"name\":\""
       << jsonEscape(E.Name) << "\",\"start_us\":" << E.StartNs / 1000
       << ",\"dur_us\":" << E.DurNs / 1000 << ",\"tid\":" << E.ThreadId
       << ",\"attrs\":{";
    for (size_t A = 0; A < E.Attrs.size(); ++A) {
      const TraceAttr &At = E.Attrs[A];
      if (A)
        OS << ",";
      OS << "\"" << jsonEscape(At.Key) << "\":";
      switch (At.T) {
      case TraceAttr::Type::String:
        OS << "\"" << jsonEscape(At.Str) << "\"";
        break;
      case TraceAttr::Type::Int:
        OS << At.Int;
        break;
      case TraceAttr::Type::Bool:
        OS << (At.Flag ? "true" : "false");
        break;
      case TraceAttr::Type::Double:
        OS << At.Dbl;
        break;
      }
    }
    OS << "}}";
  }
  OS << "]";
}

/// JSON embedded in a <script> block must not contain "<" (it could form
/// "</script>" inside a string and truncate the document). "<" only
/// occurs inside JSON strings, where < is equivalent.
std::string htmlSafe(const std::string &Json) {
  std::string Out;
  Out.reserve(Json.size());
  for (char C : Json) {
    if (C == '<')
      Out += "\\u003c";
    else
      Out += C;
  }
  return Out;
}

// The page skeleton. Styling follows the repo's data-viz conventions:
// categorical colors are assigned to search layers in a fixed slot order
// (never cycled; overflow layers fold to a neutral), text wears text
// tokens rather than series colors, and dark mode is a selected palette,
// not an automatic inversion.
const char *PageHead = R"html(<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<style>
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --surface-2: #f0efec;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #8a887f;
  --border: #dddbd4;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
  --series-7: #4a3aa7; --series-8: #e34948; --series-other: #8a887f;
  --core: #eda100; --infl: #86b6ef;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --surface-2: #252523;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #8a887f;
    --border: #3a3935;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
    --series-7: #9085e9; --series-8: #e66767; --series-other: #8a887f;
    --core: #c98500; --infl: #1c5cab;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 1.5rem; background: var(--surface-1);
  color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 1.3rem; margin: 0 0 .25rem; }
h2 { font-size: 1.05rem; margin: 2rem 0 .5rem; }
.sub { color: var(--text-secondary); margin-bottom: 1rem; }
.tiles { display: flex; flex-wrap: wrap; gap: .75rem; margin: 1rem 0; }
.tile {
  background: var(--surface-2); border: 1px solid var(--border);
  border-radius: 8px; padding: .6rem .9rem; min-width: 8rem;
}
.tile .v { font-size: 1.3rem; font-weight: 600; }
.tile .k { color: var(--text-secondary); font-size: .8rem; }
.legend { display: flex; flex-wrap: wrap; gap: .4rem .9rem; margin: .5rem 0;
  color: var(--text-secondary); font-size: .85rem; }
.legend .sw { display: inline-block; width: 10px; height: 10px;
  border-radius: 3px; margin-right: .3rem; vertical-align: -1px; }
.badge { display: inline-block; border-radius: 4px; padding: 0 .4rem;
  font-size: .75rem; border: 1px solid var(--border);
  color: var(--text-secondary); margin-right: .35rem; }
.dot { display: inline-block; width: 9px; height: 9px; border-radius: 50%;
  margin-right: .45rem; vertical-align: -1px; }
ol.sugg { padding-left: 1.5rem; }
ol.sugg li { margin: .45rem 0; }
ol.sugg .desc { font-weight: 600; }
.meta { color: var(--text-muted); font-size: .85rem; }
details.span { margin-left: 1.1rem; border-left: 1px solid var(--border);
  padding-left: .5rem; }
details.span > summary { cursor: pointer; list-style: none;
  white-space: nowrap; overflow: hidden; text-overflow: ellipsis; }
details.span > summary::before { content: "\25B8"; color: var(--text-muted);
  display: inline-block; width: 1em; }
details.span[open] > summary::before { content: "\25BE"; }
details.span.leaf > summary::before { content: "\00B7"; }
summary .fail { color: var(--text-muted); }
summary .ok { font-weight: 600; }
.in-core > summary { outline: 2px solid var(--core); outline-offset: 1px;
  border-radius: 4px; }
.in-infl > summary { background:
  color-mix(in srgb, var(--infl) 18%, transparent); border-radius: 4px; }
#timeline { width: 100%; background: var(--surface-2);
  border: 1px solid var(--border); border-radius: 8px; }
#tooltip { position: fixed; display: none; pointer-events: none;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: .35rem .6rem; font-size: .8rem; z-index: 10;
  max-width: 24rem; box-shadow: 0 2px 8px rgba(0,0,0,.25); }
pre.src { background: var(--surface-2); border: 1px solid var(--border);
  border-radius: 8px; padding: .8rem; overflow-x: auto; }
table.kinds { border-collapse: collapse; font-size: .85rem; }
table.kinds td, table.kinds th { border: 1px solid var(--border);
  padding: .2rem .6rem; text-align: left; }
table.kinds th { color: var(--text-secondary); font-weight: 600; }
.clash { font-weight: 600; }
</style>
</head>
<body>
)html";

const char *PageScript = R"html(<div id="tooltip"></div>
<script>
"use strict";
// Fixed categorical slot order for search layers -- identity follows the
// layer, never its rank in this particular trace; layers beyond the
// assigned set fold to the neutral "other" color.
const LAYER_SLOTS = {
  "localize": 1, "constructive": 2, "removal": 3, "adaptation": 4,
  "triage": 5, "pattern-fix": 6, "decl-change": 7, "slice": 8,
};
function layerColor(layer) {
  const s = LAYER_SLOTS[layer];
  return s ? `var(--series-${s})` : "var(--series-other)";
}
const R = DATA.report, EV = DATA.events;
const fmt = (n) => n.toLocaleString("en-US");
const el = (tag, cls, text) => {
  const e = document.createElement(tag);
  if (cls) e.className = cls;
  if (text !== undefined) e.textContent = text;
  return e;
};

// --- Stat tiles ---------------------------------------------------------
(function tiles() {
  const t = document.getElementById("tiles");
  const add = (k, v) => {
    const d = el("div", "tile");
    d.appendChild(el("div", "v", v));
    d.appendChild(el("div", "k", k));
    t.appendChild(d);
  };
  add("oracle calls", fmt(R.effort.oracle_calls));
  add("inference runs", fmt(R.effort.inference_runs));
  add("cache hits", fmt(R.effort.cache_hits));
  add("slice-pruned calls", fmt(R.effort.slice_pruned_calls));
  add("suggestions", fmt(R.outcome.suggestions.length));
  add("wall time", (R.effort.wall_seconds * 1000).toFixed(1) + " ms");
})();

// --- Ranked suggestions -------------------------------------------------
(function suggestions() {
  const ol = document.getElementById("sugg");
  if (!R.outcome.suggestions.length) {
    document.getElementById("sugg-empty").style.display = "block";
    return;
  }
  for (const s of R.outcome.suggestions) {
    const li = el("li");
    const dot = el("span", "dot");
    dot.style.background = layerColor(s.layer);
    li.appendChild(dot);
    li.appendChild(el("span", "desc", s.description));
    const meta = el("div", "meta");
    const badge = (t) => meta.appendChild(el("span", "badge", t));
    badge(s.kind);
    badge(s.layer);
    if (s.via_triage) badge("via triage");
    if (s.in_slice) badge("in slice core");
    if (s.likely_unbound) badge("likely unbound");
    meta.appendChild(el("span", "", " at " + (s.path || "(decl)")));
    li.appendChild(meta);
    ol.appendChild(li);
  }
})();

// --- Shared legend ------------------------------------------------------
function legendInto(id, layers) {
  const lg = document.getElementById(id);
  for (const l of layers) {
    const item = el("span");
    const sw = el("span", "sw");
    sw.style.background = layerColor(l);
    item.appendChild(sw);
    item.appendChild(document.createTextNode(l));
    lg.appendChild(item);
  }
}

// --- Search tree --------------------------------------------------------
const coreSet = new Set(R.slice.core_paths);
const inflSet = new Set(R.slice.influence_paths);
(function tree() {
  const byParent = new Map();
  for (const e of EV) {
    if (!byParent.has(e.parent)) byParent.set(e.parent, []);
    byParent.get(e.parent).push(e);
  }
  for (const kids of byParent.values())
    kids.sort((a, b) => a.start_us - b.start_us || a.id - b.id);
  const seenLayers = new Set();
  function attrOf(e, k) { return e.attrs[k]; }
  function nodeLayer(e) {
    return attrOf(e, "layer") ||
      ({"oracle-call": "", "candidate": "constructive",
        "triage": "triage", "triage-phase": "triage",
        "pattern-fix": "pattern-fix", "decl-changes": "decl-change",
        "localize": "localize", "slice": "slice"})[e.kind] || "";
  }
  function label(e) {
    const parts = [];
    const path = attrOf(e, "path");
    if (path !== undefined) parts.push(path);
    const desc = attrOf(e, "description");
    if (desc) parts.push(desc);
    const layer = attrOf(e, "layer");
    if (layer) parts.push(layer);
    const served = attrOf(e, "served_by");
    if (served && served !== "full-inference") parts.push(served);
    if (e.dur_us >= 1000) parts.push((e.dur_us / 1000).toFixed(1) + " ms");
    return parts.join(" · ");
  }
  function render(e, depth) {
    const d = el("details", "span");
    if (depth < 3) d.open = true;
    const kids = byParent.get(e.id) || [];
    if (!kids.length) { d.className += " leaf"; }
    const s = el("summary");
    const layer = nodeLayer(e);
    if (layer) seenLayers.add(layer);
    const dot = el("span", "dot");
    dot.style.background = layer ? layerColor(layer) : "var(--series-other)";
    s.appendChild(dot);
    s.appendChild(el("span", "badge", e.kind));
    const verdict = attrOf(e, "verdict");
    if (verdict !== undefined)
      s.appendChild(el("span", verdict ? "ok" : "fail",
                       verdict ? "✓ " : "✗ "));
    s.appendChild(document.createTextNode(label(e)));
    d.appendChild(s);
    const path = attrOf(e, "path");
    if (path !== undefined && coreSet.has(path)) d.classList.add("in-core");
    else if (path !== undefined && inflSet.has(path)) d.classList.add("in-infl");
    // Collapse oracle-call noise: calls render as leaves, capped per node.
    let shown = 0;
    for (const k of kids) {
      if (k.kind === "oracle-call" && ++shown > 40) {
        d.appendChild(el("div", "meta",
          "… " + (kids.length - shown + 1) + " more oracle calls"));
        break;
      }
      d.appendChild(render(k, depth + 1));
    }
    return d;
  }
  const root = document.getElementById("tree");
  for (const e of byParent.get(0) || []) root.appendChild(render(e, 0));
  if (!EV.length)
    root.appendChild(el("div", "meta", "no trace events recorded"));
  legendInto("tree-legend", [...seenLayers].sort());
})();

// --- Oracle-call timeline ----------------------------------------------
(function timeline() {
  const calls = EV.filter((e) => e.kind === "oracle-call");
  const box = document.getElementById("timeline-box");
  if (!calls.length) {
    box.appendChild(el("div", "meta", "no oracle-call spans in the trace"));
    return;
  }
  const layers = [...new Set(calls.map((e) => e.attrs.layer || "unattributed"))]
    .sort();
  legendInto("tl-legend", layers);
  const laneH = 22, pad = 4, axisH = 22, labelW = 110;
  const spanEnd = Math.max(...calls.map((e) => e.start_us + e.dur_us));
  const t0 = Math.min(...calls.map((e) => e.start_us));
  const W = 1100, plotW = W - labelW - 10;
  const H = layers.length * laneH + axisH + pad * 2;
  const svg = document.createElementNS("http://www.w3.org/2000/svg", "svg");
  svg.setAttribute("viewBox", `0 0 ${W} ${H}`);
  svg.id = "timeline";
  const sx = (us) => labelW + ((us - t0) / Math.max(1, spanEnd - t0)) * plotW;
  const mk = (tag) =>
    document.createElementNS("http://www.w3.org/2000/svg", tag);
  layers.forEach((l, i) => {
    const y = pad + i * laneH;
    const t = mk("text");
    t.setAttribute("x", 4); t.setAttribute("y", y + laneH - 8);
    t.setAttribute("fill", "var(--text-secondary)");
    t.setAttribute("font-size", "11");
    t.textContent = l;
    svg.appendChild(t);
    const ln = mk("line");
    ln.setAttribute("x1", labelW); ln.setAttribute("x2", W - 10);
    ln.setAttribute("y1", y + laneH - 3); ln.setAttribute("y2", y + laneH - 3);
    ln.setAttribute("stroke", "var(--border)");
    svg.appendChild(ln);
  });
  const tip = document.getElementById("tooltip");
  for (const c of calls) {
    const lane = layers.indexOf(c.attrs.layer || "unattributed");
    const r = mk("rect");
    const x = sx(c.start_us);
    r.setAttribute("x", x.toFixed(2));
    r.setAttribute("y", pad + lane * laneH + 3);
    r.setAttribute("width",
      Math.max(1.5, sx(c.start_us + c.dur_us) - x).toFixed(2));
    r.setAttribute("height", laneH - 9);
    r.setAttribute("rx", 1.5);
    r.setAttribute("fill", layerColor(c.attrs.layer || ""));
    r.addEventListener("mousemove", (ev) => {
      tip.style.display = "block";
      tip.style.left = Math.min(ev.clientX + 14, innerWidth - 260) + "px";
      tip.style.top = (ev.clientY + 14) + "px";
      const a = c.attrs;
      tip.textContent =
        `${a.layer || "unattributed"} · ${c.dur_us} µs` +
        (a.served_by ? ` · ${a.served_by}` : "") +
        (a.verdict !== undefined ? (a.verdict ? " · ✓" : " · ✗") : "") +
        (a.cache_hit ? " · cache hit" : "");
    });
    r.addEventListener("mouseleave", () => { tip.style.display = "none"; });
    svg.appendChild(r);
  }
  const axis = mk("text");
  axis.setAttribute("x", labelW);
  axis.setAttribute("y", H - 6);
  axis.setAttribute("fill", "var(--text-muted)");
  axis.setAttribute("font-size", "11");
  axis.textContent =
    `0 → ${((spanEnd - t0) / 1000).toFixed(1)} ms, ` +
    `${calls.length} oracle calls`;
  svg.appendChild(axis);
  box.appendChild(svg);
})();

// --- Slice panel --------------------------------------------------------
(function slicePanel() {
  const p = document.getElementById("slice");
  if (!R.slice.valid) {
    p.appendChild(el("div", "meta",
      "no error slice recorded for this run (run with --slice, or the " +
      "failure was not sliceable)"));
    return;
  }
  const head = el("div");
  head.appendChild(el("span", "",
    `influence set: ${R.slice.influence} nodes, minimized core: ` +
    `${R.slice.core} nodes`));
  p.appendChild(head);
  const mk = (title, paths, cls) => {
    if (!paths.length) return;
    const d = el("div");
    d.appendChild(el("span", "badge", title));
    for (const q of paths) {
      const b = el("span", "badge", q || "(decl)");
      b.classList.add(cls);
      d.appendChild(b);
    }
    p.appendChild(d);
  };
  mk("core paths", R.slice.core_paths, "in-core");
  mk("influence paths", R.slice.influence_paths, "in-infl");
  p.appendChild(el("div", "meta",
    "core nodes are outlined in the search tree above; influence nodes " +
    "are tinted"));
})();

// --- Live ops panel -----------------------------------------------------
// Renders a scraped OpsRegistry snapshot (DATA.ops): headline tiles for
// traffic and latency, then the full instrument table. Absent when the
// page was built without --ops-snapshot.
(() => {
  const ops = DATA.ops;
  const box = document.getElementById("ops");
  if (!ops) {
    document.getElementById("ops-h").style.display = "none";
    box.style.display = "none";
    return;
  }
  const tiles = el("div", "tiles");
  const tile = (k, v) => {
    const t = el("div", "tile");
    t.appendChild(el("div", "v", v));
    t.appendChild(el("div", "k", k));
    tiles.appendChild(t);
  };
  const counterVal = (n) => {
    const f = ops[n];
    return f && f.values.length ? f.values[0].value : null;
  };
  for (const [name, label] of [["seminal_requests_total", "requests"],
                               ["seminal_checks_total", "checks"],
                               ["seminal_warm_hits_total", "warm hits"],
                               ["seminal_sessions", "sessions"],
                               ["seminal_evictions_total", "evictions"],
                               ["seminal_slow_traces_total", "slow traces"]]) {
    const v = counterVal(name);
    if (v !== null) tile(label, fmt(v));
  }
  const lat = ops["seminal_request_latency_us"];
  if (lat) for (const inst of lat.values) {
    if (!inst.count) continue;
    const state = inst.labels.state || "?";
    tile(`${state} p50 / p95 (ms)`,
         `${(inst.p50 / 1000).toFixed(1)} / ${(inst.p95 / 1000).toFixed(1)}`);
  }
  // SLO burn rate: the gauges carry milli-burn (1000 = spending the
  // error budget exactly at the sustainable rate). Tint the tile when a
  // window is burning hot.
  const burn = ops["seminal_slo_burn_rate_milli"];
  if (burn) for (const inst of burn.values) {
    const t = el("div", "tile");
    const v = el("div", "v", (inst.value / 1000).toFixed(2) + "x");
    if (inst.value > 1000) v.style.color = "#c0392b";
    t.appendChild(v);
    t.appendChild(el("div", "k",
                     `${inst.labels.window || "?"}-window SLO burn`));
    tiles.appendChild(t);
  }
  const cpu = ops["seminal_cost_cpu_us_total"];
  if (cpu && cpu.values.length)
    tile("total check CPU (s)", (cpu.values[0].value / 1e6).toFixed(2));
  box.appendChild(tiles);
  const tbl = el("table", "kinds");
  const hdr = el("tr");
  for (const h of ["metric", "labels", "value / p50", "p95", "p99", "count"])
    hdr.appendChild(el("th", null, h));
  tbl.appendChild(hdr);
  for (const name of Object.keys(ops).sort()) {
    const f = ops[name];
    for (const inst of f.values) {
      const tr = el("tr");
      tr.appendChild(el("td", null, name));
      tr.appendChild(el("td", null,
        Object.entries(inst.labels).map(([k, v]) => `${k}=${v}`).join(",")));
      if (f.type === "histogram") {
        tr.appendChild(el("td", null, fmt(inst.p50)));
        tr.appendChild(el("td", null, fmt(inst.p95)));
        tr.appendChild(el("td", null, fmt(inst.p99)));
        tr.appendChild(el("td", null, fmt(inst.count)));
      } else {
        tr.appendChild(el("td", null, fmt(inst.value)));
        tr.appendChild(el("td", null, ""));
        tr.appendChild(el("td", null, ""));
        tr.appendChild(el("td", null, ""));
      }
      tbl.appendChild(tr);
    }
  }
  box.appendChild(tbl);
})();

// --- Flamegraph panel ---------------------------------------------------
// Renders DATA.profile (a ProfileSnapshot: folded stacks + exact phase
// CPU) as a classic bottom-up flamegraph -- a trie over the folded
// stacks, each frame a box whose width is its subtree's sample share.
// Absent when the page was built without --profile-snapshot.
(() => {
  const prof = DATA.profile;
  const box = document.getElementById("flame");
  if (!prof || !prof.samples) {
    document.getElementById("flame-h").style.display = "none";
    box.style.display = "none";
    return;
  }
  // Fold the stack list into a trie of {name, total, kids}.
  const root = { name: "all", total: 0, kids: new Map() };
  for (const { stack, count } of prof.stacks) {
    root.total += count;
    let node = root;
    for (const frame of stack.split(";")) {
      if (!node.kids.has(frame))
        node.kids.set(frame, { name: frame, total: 0, kids: new Map() });
      node = node.kids.get(frame);
      node.total += count;
    }
  }
  const W = 940, ROW = 18;
  let depthMax = 0;
  (function measure(n, d) {
    depthMax = Math.max(depthMax, d);
    for (const k of n.kids.values()) measure(k, d + 1);
  })(root, 0);
  const svg = document.createElementNS("http://www.w3.org/2000/svg", "svg");
  svg.setAttribute("width", W);
  svg.setAttribute("height", (depthMax + 1) * ROW + 4);
  const colors = ["#e8833a", "#d6616b", "#e7ba52", "#ad494a", "#e7969c"];
  let ci = 0;
  (function draw(n, d, x0, x1) {
    if (d >= 0 && x1 - x0 >= 1) {
      const g = document.createElementNS(svg.namespaceURI, "g");
      const r = document.createElementNS(svg.namespaceURI, "rect");
      r.setAttribute("x", x0); r.setAttribute("y", d * ROW + 2);
      r.setAttribute("width", Math.max(x1 - x0 - 0.5, 0.5));
      r.setAttribute("height", ROW - 2);
      r.setAttribute("fill", colors[ci++ % colors.length]);
      r.setAttribute("rx", 2);
      const title = document.createElementNS(svg.namespaceURI, "title");
      title.textContent = `${n.name}: ${n.total} samples ` +
        `(${(100 * n.total / root.total).toFixed(1)}%)`;
      g.appendChild(r);
      if (x1 - x0 > 40) {
        const t = document.createElementNS(svg.namespaceURI, "text");
        t.setAttribute("x", x0 + 3);
        t.setAttribute("y", d * ROW + ROW - 4);
        t.setAttribute("font-size", "11");
        t.setAttribute("fill", "#fff");
        t.textContent = n.name.length > (x1 - x0) / 7
          ? n.name.slice(0, Math.max((x1 - x0) / 7 - 1, 1)) + "…"
          : n.name;
        g.appendChild(t);
      }
      g.appendChild(title);
      svg.appendChild(g);
    }
    let x = x0;
    for (const k of [...n.kids.values()].sort((a, b) => b.total - a.total)) {
      const w = (x1 - x0) * k.total / n.total;
      draw(k, d + 1, x, x + w);
      x += w;
    }
  })(root, -1, 0, W);
  box.appendChild(svg);
  box.appendChild(el("div", "meta",
    `${prof.samples} samples over ${prof.threads} thread slots` +
    (prof.truncated ? `, ${prof.truncated} truncated at max depth` : "")));
  // Exact per-phase CPU table (the kind-masked stamped spans).
  if (prof.cpu_self && prof.cpu_self.length) {
    const tbl = el("table", "kinds");
    const hdr = el("tr");
    for (const h of ["phase", "exact self CPU (ms)", "enters"])
      hdr.appendChild(el("th", null, h));
    tbl.appendChild(hdr);
    for (const e of [...prof.cpu_self].sort((a, b) => b.self_ns - a.self_ns)) {
      const tr = el("tr");
      tr.appendChild(el("td", null, e.name));
      tr.appendChild(el("td", null, (e.self_ns / 1e6).toFixed(2)));
      tr.appendChild(el("td", null, fmt(e.enters)));
      tbl.appendChild(tr);
    }
    box.appendChild(tbl);
  }
})();

// --- Source panel -------------------------------------------------------
document.getElementById("src").textContent = DATA.source;

// --- Header -------------------------------------------------------------
document.getElementById("prog-id").textContent = R.program.id;
document.getElementById("quality").textContent =
  R.quality.ours === "unknown"
    ? "no ground truth for this run"
    : `quality: ours ${R.quality.ours}, checker ${R.quality.checker}` +
      (R.quality.rank_of_true_fix
        ? `, true fix ranked #${R.quality.rank_of_true_fix}` : "");
</script>
</body>
</html>
)html";

} // namespace

void obs::writeExplorerHtml(std::ostream &OS,
                            const std::vector<TraceEvent> &Events,
                            const RunReport &Report,
                            const std::string &Source,
                            const ExplorerOptions &Opts) {
  std::ostringstream Data;
  Data << "{\"report\":";
  Report.writeJson(Data);
  Data << ",\"source\":\"" << jsonEscape(Source) << "\",\"events\":";
  writeEventsJson(Data, Events);
  Data << ",\"ops\":" << (Opts.OpsJson.empty() ? "null" : Opts.OpsJson);
  Data << ",\"profile\":"
       << (Opts.ProfileJson.empty() ? "null" : Opts.ProfileJson);
  Data << "}";

  OS << PageHead;
  OS << "<h1>" << jsonEscape(Opts.Title) << "</h1>\n";
  OS << "<div class=\"sub\">program <b id=\"prog-id\"></b> &middot; "
        "<span id=\"quality\"></span></div>\n"
        "<div class=\"tiles\" id=\"tiles\"></div>\n"
        "<h2>Ranked suggestions</h2>\n"
        "<div id=\"sugg-empty\" class=\"meta\" style=\"display:none\">"
        "no suggestions -- the search found no accepted change</div>\n"
        "<ol class=\"sugg\" id=\"sugg\"></ol>\n"
        "<h2>Search tree</h2>\n"
        "<div class=\"legend\" id=\"tree-legend\"></div>\n"
        "<div id=\"tree\"></div>\n"
        "<h2>Oracle-call timeline</h2>\n"
        "<div class=\"legend\" id=\"tl-legend\"></div>\n"
        "<div id=\"timeline-box\"></div>\n"
        "<h2>Error slice</h2>\n"
        "<div id=\"slice\"></div>\n"
        "<h2 id=\"ops-h\">Live ops</h2>\n"
        "<div id=\"ops\"></div>\n"
        "<h2 id=\"flame-h\">Profile flamegraph</h2>\n"
        "<div id=\"flame\"></div>\n"
        "<h2>Source</h2>\n"
        "<pre class=\"src\" id=\"src\"></pre>\n";
  OS << "<script>const DATA = " << htmlSafe(Data.str()) << ";</script>\n";
  OS << PageScript;
}
