//===- Aggregate.h - Corpus-sweep quality snapshot --------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Folds the RunReports of one corpus sweep into the aggregate quality
/// snapshot CI gates on: the Figure-5 bucket distribution, quality
/// distributions for all three message producers, the rank-of-true-fix
/// percentiles, per-layer win counts and total search effort. The
/// snapshot is written in the same shape as the bench/BASELINE_*.json
/// trajectory files ("bench": "telemetry") and diffed by
/// scripts/compare_telemetry.py.
///
/// Every gated field is deterministic in (scale, seed): running the
/// sweep twice on the same commit yields byte-identical values for all
/// of them. Wall-clock totals are carried for trend plots but never
/// gated.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_OBS_AGGREGATE_H
#define SEMINAL_OBS_AGGREGATE_H

#include "obs/RunReport.h"
#include "support/Stats.h"

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace seminal {
namespace obs {

/// Sweep-identity fields stamped into the snapshot header so the diff
/// script can refuse to compare apples to oranges.
struct SnapshotInfo {
  double Scale = 1.0;
  uint64_t Seed = 0;
  /// Configuration label ("full", "no-triage", ...); informational --
  /// the gate compares quality numbers, whatever produced them.
  std::string Config = "full";
};

/// Accumulates RunReports and renders the aggregate snapshot.
class TelemetryAggregate {
public:
  void add(const RunReport &R);

  size_t files() const { return Files; }

  /// Writes the snapshot ("bench": "telemetry", schema-versioned).
  void writeSnapshotJson(std::ostream &OS, const SnapshotInfo &Info);

private:
  size_t Files = 0;
  /// Figure-5 buckets, indexed by category 1-5 ([0] counts unknowns).
  std::array<uint64_t, 6> Buckets = {};
  /// Quality distribution per producer: [producer][quality-name].
  std::map<std::string, std::map<std::string, uint64_t>> QualityDist;
  /// Files whose top-ranked suggestion came from each layer.
  std::map<std::string, uint64_t> LayerWins;
  /// Rank-of-true-fix samples (files where the true fix was ranked).
  Samples Ranks;
  uint64_t TrueFixFound = 0;
  uint64_t NoSuggestion = 0;

  uint64_t OracleCalls = 0;
  uint64_t InferenceRuns = 0;
  uint64_t SlicePrunedCalls = 0;
  uint64_t CacheHits = 0;
  uint64_t FilesSliced = 0;
  double WallSeconds = 0.0;
};

} // namespace obs
} // namespace seminal

#endif // SEMINAL_OBS_AGGREGATE_H
