//===- Telemetry.h - Outcome telemetry sink ---------------------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The outcome half of the observability stack (DESIGN.md section 10).
/// Where the trace subsystem (support/Trace.h) records the search
/// *process* -- spans, timings, cache hits -- the telemetry sink records
/// what the search *concluded*: one CandidateOutcome per edit the
/// searcher put to the oracle (which layer asked, what kind of change,
/// what the verdict was), plus one record per ranked suggestion with its
/// final rank. A RunReport aggregates the stream per run; a corpus sweep
/// aggregates RunReports into the quality snapshot CI gates on.
///
/// Like TraceSink and Metrics, a TelemetrySink is attached by pointer and
/// null means disabled: every instrumentation site pays one branch.
/// Telemetry is observational only -- suggestions, call counts and
/// ranking are byte-identical with the sink attached or not (enforced by
/// tests/ObsTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_OBS_TELEMETRY_H
#define SEMINAL_OBS_TELEMETRY_H

#include "support/Sync.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace seminal {
namespace obs {

/// One candidate edit the search put to the oracle (or statically
/// resolved), as seen from the outcome side.
struct CandidateOutcome {
  /// Search layer that asked: "localize", "removal", "adaptation",
  /// "constructive", "decl-change", "triage", "pattern-fix",
  /// "suggestion" (post-ranking records).
  std::string Layer;
  /// Change kind ("constructive", "adaptation", "removal",
  /// "pattern-fix", "probe", ...).
  std::string Kind;
  /// Human-readable description of the edit (may be empty for probes).
  std::string Description;
  /// NodePath rendering of the site ("" when not applicable).
  std::string Path;
  /// Did the oracle (or the slice guide) accept the edit?
  bool Verdict = false;
  /// Feasibility probe: steers follow-ups, never reported.
  bool Probe = false;
  /// Answered inside a batched candidate wave.
  bool Batched = false;
  /// Statically answered "no" by slice guidance (no oracle call spent).
  bool Pruned = false;
  /// 1-based rank among the final ranked suggestions; 0 for records that
  /// are not ranked suggestions.
  int Rank = 0;
};

/// Per-layer tallies over a record stream.
struct LayerStats {
  uint64_t Tried = 0;     ///< Outcomes that reached the oracle.
  uint64_t Succeeded = 0; ///< Verdict == true among Tried.
  uint64_t Pruned = 0;    ///< Statically resolved (no oracle call).
};

/// Collects CandidateOutcomes from a run. One sink per run (or reused
/// across files with clear()); not owned by the components it observes.
class TelemetrySink {
public:
  /// Records one outcome. Thread-safe.
  void record(CandidateOutcome O);

  /// Number of records so far. Thread-safe.
  size_t size() const;

  /// Copy of the record stream in record order. Thread-safe.
  std::vector<CandidateOutcome> snapshot() const;

  /// Drops all records (reuse between files).
  void clear();

  /// Per-layer tallies of the recorded stream, excluding the
  /// post-ranking "suggestion" records (those duplicate outcomes already
  /// counted under their issuing layer).
  std::map<std::string, LayerStats> layerStats() const;

private:
  mutable sync::Mutex Mutex{sync::LockRank::Telemetry, "telemetry.sink"};
  std::vector<CandidateOutcome> Records SEMINAL_GUARDED_BY(Mutex);
};

} // namespace obs
} // namespace seminal

#endif // SEMINAL_OBS_TELEMETRY_H
