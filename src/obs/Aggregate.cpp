//===- Aggregate.cpp - Corpus-sweep quality snapshot ------------------------==//

#include "obs/Aggregate.h"

#include "support/Trace.h" // jsonEscape

using namespace seminal;
using namespace seminal::obs;

void TelemetryAggregate::add(const RunReport &R) {
  ++Files;
  size_t B = R.Bucket >= 1 && R.Bucket <= 5 ? size_t(R.Bucket) : 0;
  ++Buckets[B];

  ++QualityDist["checker"][R.QualityChecker];
  ++QualityDist["ours"][R.QualityOurs];
  ++QualityDist["ours_no_triage"][R.QualityNoTriage];

  if (!R.WinningLayer.empty())
    ++LayerWins[R.WinningLayer];
  else
    ++NoSuggestion;

  if (R.RankOfTrueFix > 0) {
    ++TrueFixFound;
    Ranks.add(double(R.RankOfTrueFix));
  }

  OracleCalls += R.OracleCalls;
  InferenceRuns += R.InferenceRuns;
  SlicePrunedCalls += R.SlicePrunedCalls;
  CacheHits += R.Accel.CacheHits;
  if (R.SliceValid)
    ++FilesSliced;
  WallSeconds += R.WallSeconds;
}

void TelemetryAggregate::writeSnapshotJson(std::ostream &OS,
                                           const SnapshotInfo &Info) {
  auto Pct = [&](uint64_t N) {
    return Files == 0 ? 0.0 : 100.0 * double(N) / double(Files);
  };
  char Buf[64];
  auto F = [&](double D) {
    std::snprintf(Buf, sizeof(Buf), "%.4f", D);
    return std::string(Buf);
  };

  uint64_t OursBetter = Buckets[3] + Buckets[4];
  uint64_t CheckerBetter = Buckets[5];
  uint64_t NoWorse = Buckets[1] + Buckets[2] + Buckets[3] + Buckets[4];
  uint64_t TriageHelped = Buckets[2] + Buckets[4];

  OS << "{\n";
  OS << "  \"bench\": \"telemetry\",\n";
  OS << "  \"schema_version\": " << RunReportSchemaVersion << ",\n";
  OS << "  \"files\": " << Files << ",\n";
  OS << "  \"scale\": " << F(Info.Scale) << ",\n";
  OS << "  \"seed\": " << Info.Seed << ",\n";
  OS << "  \"config\": \"" << jsonEscape(Info.Config) << "\",\n";

  OS << "  \"buckets\": {";
  for (size_t B = 1; B <= 5; ++B)
    OS << "\"" << B << "\": " << Buckets[B] << (B < 5 ? ", " : "");
  OS << "},\n";
  OS << "  \"unknown_bucket\": " << Buckets[0] << ",\n";

  OS << "  \"quality\": {\n";
  size_t PI = 0;
  for (const auto &Producer : QualityDist) {
    OS << "    \"" << jsonEscape(Producer.first) << "\": {";
    size_t QI = 0;
    for (const auto &KV : Producer.second) {
      OS << "\"" << jsonEscape(KV.first) << "\": " << KV.second;
      if (++QI < Producer.second.size())
        OS << ", ";
    }
    OS << "}" << (++PI < QualityDist.size() ? "," : "") << "\n";
  }
  OS << "  },\n";

  OS << "  \"ours_better_pct\": " << F(Pct(OursBetter)) << ",\n";
  OS << "  \"checker_better_pct\": " << F(Pct(CheckerBetter)) << ",\n";
  OS << "  \"no_worse_pct\": " << F(Pct(NoWorse)) << ",\n";
  OS << "  \"triage_helped_pct\": " << F(Pct(TriageHelped)) << ",\n";

  OS << "  \"rank_of_true_fix\": {\"found\": " << TrueFixFound
     << ", \"found_pct\": " << F(Pct(TrueFixFound));
  if (!Ranks.empty())
    OS << ", \"p50\": " << F(Ranks.percentile(0.50))
       << ", \"p95\": " << F(Ranks.percentile(0.95))
       << ", \"max\": " << F(Ranks.max());
  OS << "},\n";

  OS << "  \"layer_wins\": {";
  size_t LI = 0;
  for (const auto &KV : LayerWins) {
    OS << "\"" << jsonEscape(KV.first) << "\": " << KV.second;
    if (++LI < LayerWins.size())
      OS << ", ";
  }
  OS << "},\n";
  OS << "  \"no_suggestion\": " << NoSuggestion << ",\n";

  OS << "  \"oracle_calls\": " << OracleCalls << ",\n";
  OS << "  \"inference_runs\": " << InferenceRuns << ",\n";
  OS << "  \"slice_pruned_calls\": " << SlicePrunedCalls << ",\n";
  OS << "  \"cache_hits\": " << CacheHits << ",\n";
  OS << "  \"files_sliced\": " << FilesSliced << ",\n";
  OS << "  \"wall_seconds\": " << F(WallSeconds) << "\n";
  OS << "}\n";
}
