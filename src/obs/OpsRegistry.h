//===- OpsRegistry.h - Live counters, gauges and histograms -----*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide registry behind the daemon's live observability
/// (DESIGN.md section 14). Everything the existing obs layer records is
/// offline -- RunReports and traces written to files after a one-shot
/// run. OpsRegistry is the *live* counterpart: named counters, gauges
/// and log-bucketed latency histograms (support/Histogram.h) that the
/// server updates on every request and that two renderers read while
/// traffic is flowing:
///
///   * renderPrometheus() -- text exposition format (version 0.0.4),
///     served by `GET /metrics` and scrapeable by any Prometheus-
///     compatible collector. Histograms render as summaries with
///     quantile labels plus _sum/_count.
///   * writeJson() -- one compact JSON object in the tree's existing
///     JSON style, served by the `metrics` protocol verb and consumed
///     by the Explorer's live-ops panel.
///
/// Instruments are created on first use and live as long as the
/// registry; the returned references are stable, so hot paths resolve
/// their instruments once and then pay only atomic operations -- no map
/// lookups, no locks, no allocation per update. Families are typed: one
/// metric name is a counter, a gauge or a histogram forever (re-asking
/// with the same kind returns the same instrument; labels select
/// instances within the family).
///
/// Naming conventions (section 14): `seminal_` prefix, snake_case,
/// unit suffix (`_us`, `_bytes`, `_seconds`), `_total` on counters;
/// per-shard series carry a `shard="N"` label, request-latency series a
/// `state="cold"|"warm"` label.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_OBS_OPSREGISTRY_H
#define SEMINAL_OBS_OPSREGISTRY_H

#include "support/Histogram.h"
#include "support/Sync.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace seminal {
namespace obs {

/// Monotonic event count. Lock-free.
class OpsCounter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Instantaneous level (queue depth, retained bytes, session count).
/// Lock-free; may go up and down.
class OpsGauge {
public:
  void set(int64_t Value) { V.store(Value, std::memory_order_relaxed); }
  void add(int64_t N) { V.fetch_add(N, std::memory_order_relaxed); }
  int64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Label set attached to one instrument instance, e.g. {{"shard","0"}}.
/// Order is preserved in the exposition.
using OpsLabels = std::vector<std::pair<std::string, std::string>>;

/// A Prometheus "info"-style series: constant value 1 whose *labels*
/// carry the payload (the slowest-request exemplar: request id, session,
/// latency). Unlike other instruments the labels are mutable -- there is
/// one series per family and set() re-points it -- so a changing
/// exemplar never accumulates dead label sets. Updates and reads go
/// through an internal leaf-ranked lock; exemplars update rarely (only
/// on a new maximum), so this is not a hot path.
class OpsInfo {
public:
  void set(OpsLabels Labels) {
    sync::MutexLock Lock(Mutex);
    L = std::move(Labels);
  }
  OpsLabels labels() const {
    sync::MutexLock Lock(Mutex);
    return L;
  }

private:
  mutable sync::Mutex Mutex{sync::LockRank::Leaf, "ops.info"};
  OpsLabels L SEMINAL_GUARDED_BY(Mutex);
};

class OpsRegistry {
public:
  OpsRegistry() = default;
  OpsRegistry(const OpsRegistry &) = delete;
  OpsRegistry &operator=(const OpsRegistry &) = delete;

  /// Finds or creates the instrument; the reference stays valid for the
  /// registry's lifetime. \p Help is recorded on first use of the name.
  /// Asking for an existing name with a different kind is a programming
  /// error; the call returns a detached instrument that renders nowhere
  /// rather than corrupting the family.
  OpsCounter &counter(const std::string &Name, const std::string &Help = "",
                      const OpsLabels &Labels = {});
  OpsGauge &gauge(const std::string &Name, const std::string &Help = "",
                  const OpsLabels &Labels = {});
  LogHistogram &histogram(const std::string &Name,
                          const std::string &Help = "",
                          const OpsLabels &Labels = {});
  /// One mutable-label info series per family (see OpsInfo).
  OpsInfo &info(const std::string &Name, const std::string &Help = "");

  /// Prometheus text exposition format 0.0.4 (see file comment).
  std::string renderPrometheus() const;

  /// One compact JSON object (no newlines): name -> {"type","help",
  /// "values":[{"labels":{..},"value":n}]} for counters/gauges, and
  /// {"labels","count","sum","min","max","mean","p50","p90","p95",
  /// "p99"} entries for histograms.
  void writeJson(std::ostream &OS) const;

  /// Shared registry for code without an obvious owner; the server
  /// engine prefers its own instance.
  static OpsRegistry &process();

private:
  enum class Kind { Counter, Gauge, Histogram, Info };

  struct Instrument {
    OpsLabels Labels;
    std::unique_ptr<OpsCounter> C;
    std::unique_ptr<OpsGauge> G;
    std::unique_ptr<LogHistogram> H;
    std::unique_ptr<OpsInfo> N;
  };
  struct Family {
    Kind K = Kind::Counter;
    std::string Help;
    std::vector<std::unique_ptr<Instrument>> Instruments;
  };

  Instrument &instrument(Kind K, const std::string &Name,
                         const std::string &Help, const OpsLabels &Labels);

  mutable sync::Mutex Mutex{sync::LockRank::OpsRegistry, "ops.registry"};
  /// The maps are guarded; the instruments they own are lock-free
  /// atomics updated through the stable references handed out, with no
  /// lock held.
  std::map<std::string, Family> Families SEMINAL_GUARDED_BY(Mutex);
  /// Kind-mismatched requests park here so the returned reference is
  /// still safe to use (see counter()).
  std::vector<std::unique_ptr<Instrument>> Detached SEMINAL_GUARDED_BY(Mutex);
};

/// Escapes a Prometheus label value (backslash, double quote, newline).
std::string promEscapeLabel(const std::string &S);

/// Replaces every character outside [a-zA-Z0-9_:] with '_' (and prefixes
/// '_' if the name starts with a digit) so the result is a valid
/// Prometheus metric name.
std::string promSanitizeName(const std::string &S);

} // namespace obs
} // namespace seminal

#endif // SEMINAL_OBS_OPSREGISTRY_H
