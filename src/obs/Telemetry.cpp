//===- Telemetry.cpp - Outcome telemetry sink ------------------------------==//

#include "obs/Telemetry.h"

using namespace seminal;
using namespace seminal::obs;

void TelemetrySink::record(CandidateOutcome O) {
  sync::MutexLock Lock(Mutex);
  Records.push_back(std::move(O));
}

size_t TelemetrySink::size() const {
  sync::MutexLock Lock(Mutex);
  return Records.size();
}

std::vector<CandidateOutcome> TelemetrySink::snapshot() const {
  sync::MutexLock Lock(Mutex);
  return Records;
}

void TelemetrySink::clear() {
  sync::MutexLock Lock(Mutex);
  Records.clear();
}

std::map<std::string, LayerStats> TelemetrySink::layerStats() const {
  sync::MutexLock Lock(Mutex);
  std::map<std::string, LayerStats> Stats;
  for (const CandidateOutcome &O : Records) {
    if (O.Rank > 0)
      continue; // post-ranking duplicate of an already-counted outcome
    LayerStats &S = Stats[O.Layer];
    if (O.Pruned) {
      ++S.Pruned;
    } else {
      ++S.Tried;
      if (O.Verdict)
        ++S.Succeeded;
    }
  }
  return Stats;
}
