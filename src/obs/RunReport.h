//===- RunReport.h - Versioned machine-readable run outcome -----*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One SEMINAL run distilled to a schema-versioned record (DESIGN.md
/// section 10): program identity, the ranked suggestion outcomes, the
/// quality verdict against ground truth when it is known, and the
/// per-layer effort breakdown. RunReports are what the corpus sweep
/// writes one-per-line into telemetry JSONL files, what the aggregate
/// quality snapshot is folded from, and what the offline search-explorer
/// renders next to the span trace.
///
/// Schema compatibility rule: consumers reject records whose
/// schema_version differs from their own; *adding* a field is allowed
/// without a bump (consumers must ignore unknown fields), while
/// removing, renaming or changing the meaning of any existing field
/// requires incrementing RunReportSchemaVersion. The committed
/// bench/BASELINE_telemetry.json pins the version, so an accidental
/// incompatible change fails the CI telemetry gate.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_OBS_RUNREPORT_H
#define SEMINAL_OBS_RUNREPORT_H

#include "obs/Telemetry.h"
#include "support/Stats.h"

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace seminal {
namespace obs {

/// Bumped on any incompatible change to the RunReport JSON layout (see
/// the file comment for the compatibility rule).
///
/// v2: effort gained a mandatory "cost" object -- the per-request cost
/// ledger (cpu_ns / wall_ns / oracle_calls / inference_runs /
/// arena_nodes / arena_bytes / verdict_cache_hits). Consumers that
/// reconcile effort against the ledger must not read v1 records, hence
/// the bump rather than a silent field addition.
inline constexpr int RunReportSchemaVersion = 2;

/// One ranked suggestion, flattened for reporting.
struct SuggestionOutcome {
  int Rank = 0; ///< 1-based position in the final ranking.
  std::string Kind;        ///< "constructive", "adaptation", ...
  std::string Layer;       ///< Search layer credited with the find.
  std::string Description; ///< The human-readable edit.
  std::string Path;        ///< NodePath rendering of the site.
  bool ViaTriage = false;
  bool InSlice = false;
  bool LikelyUnbound = false;
  int Priority = 0;
  unsigned OriginalSize = 0;
  unsigned ReplacementSize = 0;
};

/// Everything one run produced, as plain data. Sections mirror the JSON
/// layout: program identity / outcome / quality / effort / slice.
struct RunReport {
  int SchemaVersion = RunReportSchemaVersion;

  // Identity ----------------------------------------------------------------
  /// Stable name for the input ("p3/a2/c17" for corpus files, the file
  /// name or "<expr>" for CLI runs).
  std::string ProgramId;
  int Programmer = -1; ///< -1 = not a corpus file.
  int Assignment = -1;
  int ClassId = -1;
  /// Structural hash of the input program (caml::hashProgram).
  uint64_t SourceHash = 0;
  /// Injected mutation kinds when ground truth is known (empty = none /
  /// unknown).
  std::vector<std::string> MutationKinds;

  // Outcome -----------------------------------------------------------------
  bool Parsed = true;
  bool InputTypechecks = false;
  bool BudgetExhausted = false;
  int FailingDecl = -1; ///< -1 = none identified.
  std::vector<SuggestionOutcome> Suggestions; ///< Ranked, best first.

  /// Layer/kind of the top-ranked suggestion ("" when none).
  std::string WinningLayer;
  std::string WinningKind;

  // Quality (when ground truth is known) ------------------------------------
  /// qualityName() strings, or "unknown" when no ground truth exists.
  std::string QualityChecker = "unknown";
  std::string QualityOurs = "unknown";
  std::string QualityNoTriage = "unknown";
  /// Figure-5 category 1-5; 0 = unknown.
  int Bucket = 0;
  /// 1-based rank of the first suggestion judged Accurate against the
  /// ground truth; 0 = the true fix is not in the ranked list (or no
  /// ground truth).
  int RankOfTrueFix = 0;

  // Effort ------------------------------------------------------------------
  uint64_t OracleCalls = 0;
  uint64_t InferenceRuns = 0;
  uint64_t SlicePrunedCalls = 0;
  double WallSeconds = 0.0;
  /// The request cost ledger (schema v2). The timing fields are
  /// hardware-dependent and never gated; the logical fields mirror
  /// Accel / OracleCalls by construction.
  RequestCost Cost;
  /// Acceleration-layer counters for the run (cache hits, checkpoint
  /// reuse, batches).
  AccelCounters Accel;
  /// Candidate outcomes per search layer (from the TelemetrySink).
  std::map<std::string, LayerStats> Layers;
  /// Oracle-call spans per layer (from the TraceSummary, when a trace
  /// was recorded; empty otherwise).
  std::map<std::string, uint64_t> CallsByLayer;

  // Slice -------------------------------------------------------------------
  bool SliceValid = false;
  size_t SliceInfluence = 0;
  size_t SliceCore = 0;
  /// NodePath renderings for the explorer's slice overlay.
  std::vector<std::string> SliceCorePaths;
  std::vector<std::string> SliceInfluencePaths;

  /// Serializes the report. \p Pretty adds indentation; the default is
  /// one compact object suitable for JSONL (a single line, no trailing
  /// newline).
  void writeJson(std::ostream &OS, bool Pretty = false) const;
};

} // namespace obs
} // namespace seminal

#endif // SEMINAL_OBS_RUNREPORT_H
