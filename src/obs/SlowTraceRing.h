//===- SlowTraceRing.h - Bounded ring of slow-request traces ----*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tail sampling for the daemon (DESIGN.md section 14): every request
/// records into a TraceSink regardless, and only requests that exceeded
/// the `--trace-slow-ms` threshold export their trace. Exports land in a
/// bounded ring of Chrome-trace files named
/// `slow-<seq>-<request-id>.trace.json`; once the ring holds
/// `--trace-ring` files the oldest is deleted, so a long-lived daemon
/// with a pathological workload keeps the *most recent* slow traces and
/// a bounded disk footprint.
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_OBS_SLOWTRACERING_H
#define SEMINAL_OBS_SLOWTRACERING_H

#include "support/Sync.h"

#include <cstdint>
#include <deque>
#include <string>

namespace seminal {
class TraceSink;

namespace obs {

class SlowTraceRing {
public:
  /// \p Dir is created (one level) on first capture if missing.
  /// \p Capacity bounds the number of trace files kept on disk.
  SlowTraceRing(std::string Dir, size_t Capacity)
      : Dir(std::move(Dir)), Capacity(Capacity ? Capacity : 1) {}

  /// Writes \p Sink as a Chrome trace named after \p RequestId (rendered
  /// request-id JSON text; sanitized for the filesystem), evicting the
  /// oldest file beyond capacity. Returns the file path, or "" if the
  /// directory could not be created or the file could not be written.
  /// Thread-safe.
  std::string capture(const std::string &RequestId, const TraceSink &Sink);

  size_t size() const;
  const std::string &dir() const { return Dir; }
  uint64_t captured() const;

private:
  /// Immutable after construction.
  std::string Dir;
  size_t Capacity;
  /// Held across the export write, which drains the request's TraceSink
  /// -- hence ranked below LockRank::Trace (see the rank table).
  mutable sync::Mutex Mutex{sync::LockRank::SlowTraceRing, "slowtrace.ring"};
  std::deque<std::string> Files SEMINAL_GUARDED_BY(Mutex); ///< Oldest first.
  uint64_t Seq SEMINAL_GUARDED_BY(Mutex) = 0;
};

/// Maps \p RequestId to a filesystem-safe token: [A-Za-z0-9._-] kept,
/// everything else (quotes from JSON string ids, slashes, spaces)
/// becomes '_'; truncated to 48 chars; "req" when nothing survives.
std::string sanitizeRequestId(const std::string &RequestId);

} // namespace obs
} // namespace seminal

#endif // SEMINAL_OBS_SLOWTRACERING_H
