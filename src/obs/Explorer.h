//===- Explorer.h - Offline search-explorer HTML generator ------*- C++ -*-==//
//
// Part of the SEMINAL reproduction. See README.md for license information.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fuses one run's span trace (support/Trace.h) with its RunReport into
/// a single self-contained HTML file: the search tree by layer, the
/// oracle-call timeline, the slice overlay and the ranked suggestion
/// list -- the debugging view the paper's authors describe assembling by
/// hand in Section 3.1. The file embeds all data and script inline and
/// opens standalone (no network, no external assets).
///
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_OBS_EXPLORER_H
#define SEMINAL_OBS_EXPLORER_H

#include "obs/RunReport.h"
#include "support/Trace.h"

#include <ostream>
#include <string>
#include <vector>

namespace seminal {
namespace obs {

/// Presentation knobs for the explorer page.
struct ExplorerOptions {
  std::string Title = "SEMINAL search explorer";
  /// A scraped OpsRegistry JSON snapshot (the daemon's `metrics` verb or
  /// `GET /metrics.json`), embedded verbatim and rendered as a live-ops
  /// panel. Must be valid JSON text; empty = panel omitted.
  std::string OpsJson;
  /// A ProfileSnapshot JSON (seminal_cli --profile=FILE.json or
  /// `GET /debug/profile?format=json`), embedded verbatim and rendered
  /// as a flamegraph panel. Must be valid JSON text; empty = omitted.
  std::string ProfileJson;
};

/// Writes the explorer page for one run. \p Events is the run's span
/// stream (TraceSink::snapshot()); \p Report the matching RunReport;
/// \p Source the program text shown in the source panel.
void writeExplorerHtml(std::ostream &OS, const std::vector<TraceEvent> &Events,
                       const RunReport &Report, const std::string &Source,
                       const ExplorerOptions &Opts = {});

} // namespace obs
} // namespace seminal

#endif // SEMINAL_OBS_EXPLORER_H
