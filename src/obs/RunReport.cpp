//===- RunReport.cpp - Versioned machine-readable run outcome --------------==//

#include "obs/RunReport.h"

#include "support/Trace.h" // jsonEscape

#include <cmath>

using namespace seminal;
using namespace seminal::obs;

namespace {

/// Tiny structural JSON emitter: tracks nesting and comma placement so
/// the report serializer reads as a flat list of field writes. Compact
/// mode emits everything on one line (JSONL); pretty mode indents.
class JsonOut {
public:
  JsonOut(std::ostream &OS, bool Pretty) : OS(OS), Pretty(Pretty) {}

  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }

  void key(const char *K) {
    comma();
    OS << '"' << jsonEscape(K) << "\":";
    if (Pretty)
      OS << ' ';
    PendingValue = true;
  }

  void value(const std::string &S) { pre(); OS << '"' << jsonEscape(S) << '"'; }
  void value(const char *S) { value(std::string(S)); }
  void value(bool B) { pre(); OS << (B ? "true" : "false"); }
  void value(int64_t N) { pre(); OS << N; }
  void value(uint64_t N) { pre(); OS << N; }
  void value(int N) { value(int64_t(N)); }
  void value(unsigned N) { value(uint64_t(N)); }
  void value(double D) {
    pre();
    if (!std::isfinite(D)) {
      OS << 0; // JSON has no inf/nan; zero is the honest sentinel here
      return;
    }
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.6g", D);
    OS << Buf;
  }

  template <typename T> void field(const char *K, const T &V) {
    key(K);
    value(V);
  }

private:
  void open(char C) {
    pre();
    OS << C;
    ++Depth;
    First = true;
  }
  void close(char C) {
    --Depth;
    if (Pretty && !First)
      newline();
    OS << C;
    First = false;
  }
  /// Called before any value; handles the element comma for array
  /// members (object members get theirs from key()).
  void pre() {
    if (PendingValue) {
      PendingValue = false;
      return;
    }
    comma();
  }
  void comma() {
    if (!First)
      OS << ',';
    First = false;
    if (Pretty)
      newline();
  }
  void newline() {
    OS << '\n';
    for (int I = 0; I < Depth; ++I)
      OS << "  ";
  }

  std::ostream &OS;
  bool Pretty;
  bool First = true;
  bool PendingValue = false;
  int Depth = 0;
};

void writeStringArray(JsonOut &J, const char *Key,
                      const std::vector<std::string> &Values) {
  J.key(Key);
  J.beginArray();
  for (const std::string &V : Values)
    J.value(V);
  J.endArray();
}

} // namespace

void RunReport::writeJson(std::ostream &OS, bool Pretty) const {
  JsonOut J(OS, Pretty);
  J.beginObject();
  J.field("schema_version", SchemaVersion);

  J.key("program");
  J.beginObject();
  J.field("id", ProgramId);
  J.field("programmer", Programmer);
  J.field("assignment", Assignment);
  J.field("class_id", ClassId);
  J.field("source_hash", SourceHash);
  writeStringArray(J, "mutations", MutationKinds);
  J.endObject();

  J.key("outcome");
  J.beginObject();
  J.field("parsed", Parsed);
  J.field("input_typechecks", InputTypechecks);
  J.field("budget_exhausted", BudgetExhausted);
  J.field("failing_decl", FailingDecl);
  J.field("winning_layer", WinningLayer);
  J.field("winning_kind", WinningKind);
  J.key("suggestions");
  J.beginArray();
  for (const SuggestionOutcome &S : Suggestions) {
    J.beginObject();
    J.field("rank", S.Rank);
    J.field("kind", S.Kind);
    J.field("layer", S.Layer);
    J.field("description", S.Description);
    J.field("path", S.Path);
    J.field("via_triage", S.ViaTriage);
    J.field("in_slice", S.InSlice);
    J.field("likely_unbound", S.LikelyUnbound);
    J.field("priority", S.Priority);
    J.field("original_size", S.OriginalSize);
    J.field("replacement_size", S.ReplacementSize);
    J.endObject();
  }
  J.endArray();
  J.endObject();

  J.key("quality");
  J.beginObject();
  J.field("checker", QualityChecker);
  J.field("ours", QualityOurs);
  J.field("ours_no_triage", QualityNoTriage);
  J.field("bucket", Bucket);
  J.field("rank_of_true_fix", RankOfTrueFix);
  J.endObject();

  J.key("effort");
  J.beginObject();
  J.field("oracle_calls", OracleCalls);
  J.field("inference_runs", InferenceRuns);
  J.field("slice_pruned_calls", SlicePrunedCalls);
  J.field("wall_seconds", WallSeconds);
  J.field("cache_hits", Accel.CacheHits);
  J.field("cache_misses", Accel.CacheMisses);
  J.field("incremental_inferences", Accel.IncrementalInferences);
  J.field("full_inferences", Accel.FullInferences);
  J.field("decl_rechecks_saved", Accel.DeclInferencesSaved);
  J.field("batches", Accel.BatchesDispatched);
  J.field("wave_collapsed", Accel.WaveCollapsed);
  J.field("arena_nodes", Accel.ArenaNodes);
  J.field("arena_hits", Accel.ArenaHits);
  J.field("arena_bytes", Accel.ArenaBytes);
  J.key("cost");
  J.beginObject();
  J.field("cpu_ns", Cost.CpuNs);
  J.field("wall_ns", Cost.WallNs);
  J.field("oracle_calls", Cost.OracleCalls);
  J.field("inference_runs", Cost.InferenceRuns);
  J.field("arena_nodes", Cost.ArenaNodes);
  J.field("arena_bytes", Cost.ArenaBytes);
  J.field("verdict_cache_hits", Cost.VerdictCacheHits);
  J.endObject();
  J.key("layers");
  J.beginObject();
  for (const auto &KV : Layers) {
    J.key(KV.first.c_str());
    J.beginObject();
    J.field("tried", KV.second.Tried);
    J.field("succeeded", KV.second.Succeeded);
    J.field("pruned", KV.second.Pruned);
    J.endObject();
  }
  J.endObject();
  J.key("calls_by_layer");
  J.beginObject();
  for (const auto &KV : CallsByLayer)
    J.field(KV.first.c_str(), KV.second);
  J.endObject();
  J.endObject();

  J.key("slice");
  J.beginObject();
  J.field("valid", SliceValid);
  J.field("influence", SliceInfluence);
  J.field("core", SliceCore);
  writeStringArray(J, "core_paths", SliceCorePaths);
  writeStringArray(J, "influence_paths", SliceInfluencePaths);
  J.endObject();

  J.endObject();
}
