//===- OpsRegistry.cpp - Live counters, gauges and histograms --------------==//

#include "obs/OpsRegistry.h"

#include "support/Trace.h" // jsonEscape

#include <sstream>

using namespace seminal;
using namespace seminal::obs;

std::string obs::promEscapeLabel(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string obs::promSanitizeName(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 1);
  for (char C : S) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_' || C == ':';
    Out += Ok ? C : '_';
  }
  if (Out.empty() || (Out[0] >= '0' && Out[0] <= '9'))
    Out.insert(Out.begin(), '_');
  return Out;
}

namespace {

bool sameLabels(const OpsLabels &A, const OpsLabels &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (A[I] != B[I])
      return false;
  return true;
}

/// {label="value",...} -- empty string for no labels. \p Extra appends
/// one more pair (the quantile label on summary lines).
std::string labelBlock(const OpsLabels &Labels, const char *ExtraKey = nullptr,
                       const std::string &ExtraValue = "") {
  if (Labels.empty() && !ExtraKey)
    return "";
  std::string Out = "{";
  bool First = true;
  for (const auto &KV : Labels) {
    if (!First)
      Out += ",";
    First = false;
    Out += promSanitizeName(KV.first) + "=\"" + promEscapeLabel(KV.second) +
           "\"";
  }
  if (ExtraKey) {
    if (!First)
      Out += ",";
    Out += std::string(ExtraKey) + "=\"" + promEscapeLabel(ExtraValue) + "\"";
  }
  return Out + "}";
}

} // namespace

OpsRegistry::Instrument &OpsRegistry::instrument(Kind K,
                                                 const std::string &Name,
                                                 const std::string &Help,
                                                 const OpsLabels &Labels) {
  sync::MutexLock Lock(Mutex);
  auto MakeInstrument = [&] {
    auto I = std::make_unique<Instrument>();
    I->Labels = Labels;
    switch (K) {
    case Kind::Counter:
      I->C = std::make_unique<OpsCounter>();
      break;
    case Kind::Gauge:
      I->G = std::make_unique<OpsGauge>();
      break;
    case Kind::Histogram:
      I->H = std::make_unique<LogHistogram>();
      break;
    case Kind::Info:
      I->N = std::make_unique<OpsInfo>();
      break;
    }
    return I;
  };

  auto It = Families.find(Name);
  if (It == Families.end()) {
    Family F;
    F.K = K;
    F.Help = Help;
    It = Families.emplace(Name, std::move(F)).first;
  } else if (It->second.K != K) {
    // Type confusion on a metric name: keep the family intact and hand
    // back a detached instrument the renderers never see.
    Detached.push_back(MakeInstrument());
    return *Detached.back();
  }
  for (auto &I : It->second.Instruments)
    if (sameLabels(I->Labels, Labels))
      return *I;
  It->second.Instruments.push_back(MakeInstrument());
  return *It->second.Instruments.back();
}

OpsCounter &OpsRegistry::counter(const std::string &Name,
                                 const std::string &Help,
                                 const OpsLabels &Labels) {
  return *instrument(Kind::Counter, Name, Help, Labels).C;
}

OpsGauge &OpsRegistry::gauge(const std::string &Name, const std::string &Help,
                             const OpsLabels &Labels) {
  return *instrument(Kind::Gauge, Name, Help, Labels).G;
}

LogHistogram &OpsRegistry::histogram(const std::string &Name,
                                     const std::string &Help,
                                     const OpsLabels &Labels) {
  return *instrument(Kind::Histogram, Name, Help, Labels).H;
}

OpsInfo &OpsRegistry::info(const std::string &Name, const std::string &Help) {
  // One instrument per family: instance selection by (empty) static
  // labels; the live labels are the OpsInfo payload.
  return *instrument(Kind::Info, Name, Help, {}).N;
}

std::string OpsRegistry::renderPrometheus() const {
  sync::MutexLock Lock(Mutex);
  std::ostringstream OS;
  for (const auto &KV : Families) {
    const std::string Name = promSanitizeName(KV.first);
    const Family &F = KV.second;
    if (!F.Help.empty())
      OS << "# HELP " << Name << " " << F.Help << "\n";
    const char *Type = F.K == Kind::Counter ? "counter"
                       : F.K == Kind::Histogram ? "summary"
                                                : "gauge"; // Gauge + Info.
    OS << "# TYPE " << Name << " " << Type << "\n";
    for (const auto &I : F.Instruments) {
      switch (F.K) {
      case Kind::Counter:
        OS << Name << labelBlock(I->Labels) << " " << I->C->value() << "\n";
        break;
      case Kind::Gauge:
        OS << Name << labelBlock(I->Labels) << " " << I->G->value() << "\n";
        break;
      case Kind::Info:
        OS << Name << labelBlock(I->N->labels()) << " 1\n";
        break;
      case Kind::Histogram: {
        HistogramSummary S = I->H->summarize();
        OS << Name << labelBlock(I->Labels, "quantile", "0.5") << " " << S.P50
           << "\n";
        OS << Name << labelBlock(I->Labels, "quantile", "0.9") << " " << S.P90
           << "\n";
        OS << Name << labelBlock(I->Labels, "quantile", "0.95") << " "
           << S.P95 << "\n";
        OS << Name << labelBlock(I->Labels, "quantile", "0.99") << " "
           << S.P99 << "\n";
        OS << Name << "_sum" << labelBlock(I->Labels) << " " << S.Sum << "\n";
        OS << Name << "_count" << labelBlock(I->Labels) << " " << S.Count
           << "\n";
        break;
      }
      }
    }
  }
  return OS.str();
}

void OpsRegistry::writeJson(std::ostream &OS) const {
  sync::MutexLock Lock(Mutex);
  OS << "{";
  bool FirstFamily = true;
  for (const auto &KV : Families) {
    const Family &F = KV.second;
    if (!FirstFamily)
      OS << ",";
    FirstFamily = false;
    const char *Type = F.K == Kind::Counter     ? "counter"
                       : F.K == Kind::Gauge     ? "gauge"
                       : F.K == Kind::Histogram ? "histogram"
                                                : "info";
    OS << "\"" << jsonEscape(KV.first) << "\":{\"type\":\"" << Type
       << "\",\"help\":\"" << jsonEscape(F.Help) << "\",\"values\":[";
    bool FirstInstr = true;
    for (const auto &I : F.Instruments) {
      if (!FirstInstr)
        OS << ",";
      FirstInstr = false;
      OpsLabels LiveLabels =
          F.K == Kind::Info ? I->N->labels() : I->Labels;
      OS << "{\"labels\":{";
      bool FirstLabel = true;
      for (const auto &L : LiveLabels) {
        if (!FirstLabel)
          OS << ",";
        FirstLabel = false;
        OS << "\"" << jsonEscape(L.first) << "\":\"" << jsonEscape(L.second)
           << "\"";
      }
      OS << "}";
      switch (F.K) {
      case Kind::Counter:
        OS << ",\"value\":" << I->C->value();
        break;
      case Kind::Gauge:
        OS << ",\"value\":" << I->G->value();
        break;
      case Kind::Info:
        OS << ",\"value\":1";
        break;
      case Kind::Histogram: {
        HistogramSummary S = I->H->summarize();
        OS << ",\"count\":" << S.Count << ",\"sum\":" << S.Sum
           << ",\"min\":" << S.Min << ",\"max\":" << S.Max
           << ",\"mean\":" << S.Mean << ",\"p50\":" << S.P50
           << ",\"p90\":" << S.P90 << ",\"p95\":" << S.P95
           << ",\"p99\":" << S.P99;
        break;
      }
      }
      OS << "}";
    }
    OS << "]}";
  }
  OS << "}";
}

OpsRegistry &OpsRegistry::process() {
  static OpsRegistry R;
  return R;
}
