//===- ProfilerTest.cpp - Sampling profiler tests ---------------------------==//
//
// Pins the profiling layer's contracts (DESIGN.md section 16): folded
// stacks exactly mirror a synthetic span tree when the sampler ticks at
// known points (SampleHz = 0 + manual sampleOnce gives full
// determinism), exact CPU self-time lands on the innermost *stamped*
// span with unstamped leaves folding into their enclosing phase,
// snapshot deltas carve windows without resetting live state, the
// matched-pop guard survives out-of-order exits, sampling under thread
// churn never tears a count (the TSan CI job runs this file), and --
// the property everything else depends on -- suggestions are
// byte-identical with the profiler on and off.
//
//===----------------------------------------------------------------------===//

#include "support/Profiler.h"

#include "core/Message.h"
#include "core/Seminal.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace seminal;

namespace {

/// Burns thread CPU until CLOCK_THREAD_CPUTIME_ID has advanced by
/// \p Ns. Volatile sink so the loop cannot be optimized away.
void spinCpuNs(uint64_t Ns) {
  volatile uint64_t Sink = 0;
  uint64_t Start = prof::threadCpuNs();
  while (prof::threadCpuNs() - Start < Ns)
    for (int I = 0; I < 1000; ++I)
      Sink = Sink + uint64_t(I);
}

uint64_t stackSum(const prof::ProfileSnapshot &S) {
  uint64_t Sum = 0;
  for (const auto &[Key, Count] : S.Stacks)
    Sum += Count;
  return Sum;
}

//===----------------------------------------------------------------------===//
// Clocks and the hot-path gate
//===----------------------------------------------------------------------===//

TEST(ProfilerGateTest, StartStopTogglesTheHotPathGate) {
  EXPECT_FALSE(prof::enabled());
  prof::Profiler::Options PO;
  PO.SampleHz = 0;
  prof::profiler().start(PO);
  EXPECT_TRUE(prof::enabled());
  EXPECT_TRUE(prof::profiler().running());
  prof::profiler().stop();
  EXPECT_FALSE(prof::enabled());
  EXPECT_FALSE(prof::profiler().running());
}

TEST(ProfilerClockTest, ThreadCpuAdvancesAndProcessCpuBoundsIt) {
  uint64_t T0 = prof::threadCpuNs();
  spinCpuNs(2000000); // 2ms of real CPU work
  uint64_t T1 = prof::threadCpuNs();
  EXPECT_GE(T1 - T0, 2000000u);
  // The process clock counts every thread, so it upper-bounds any
  // single thread's total -- the ledger reconciliation invariant.
  EXPECT_GE(prof::processCpuNs(), T1);
}

//===----------------------------------------------------------------------===//
// Deterministic sampling: SampleHz = 0, ticks injected via sampleOnce
//===----------------------------------------------------------------------===//

class ProfilerTest : public ::testing::Test {
protected:
  void SetUp() override {
    prof::Profiler::Options PO;
    PO.SampleHz = 0; // no sampler thread: every tick is ours
    prof::profiler().start(PO);
    prof::profiler().clear();
  }
  void TearDown() override {
    prof::profiler().stop();
    prof::profiler().clear();
  }
};

TEST_F(ProfilerTest, FoldedStacksMatchASyntheticSpanTree) {
  prof::Profiler &P = prof::profiler();
  uint32_t Root = P.enterSpan(SpanKind::Search, "search");
  uint32_t Child = P.enterSpan(SpanKind::Localize, "localize");
  P.sampleOnce();
  P.sampleOnce();
  P.sampleOnce();
  P.exitSpan(Child);
  P.sampleOnce();
  uint32_t Leaf = P.enterSpan(SpanKind::Candidate, "candidate");
  P.sampleOnce();
  P.exitSpan(Leaf);
  P.exitSpan(Root);
  P.sampleOnce(); // stack empty: an idle thread contributes no sample

  prof::ProfileSnapshot S = P.snapshot();
  EXPECT_EQ(S.Stacks["search;localize"], 3u);
  EXPECT_EQ(S.Stacks["search"], 1u);
  EXPECT_EQ(S.Stacks["search;candidate"], 1u);
  EXPECT_EQ(S.Samples, 5u);
  EXPECT_EQ(stackSum(S), S.Samples);
  EXPECT_EQ(S.Truncated, 0u);

  // The collapsed export is flamegraph.pl's input format verbatim.
  std::ostringstream OS;
  S.writeCollapsed(OS);
  EXPECT_NE(OS.str().find("search;localize 3\n"), std::string::npos)
      << OS.str();
  EXPECT_NE(OS.str().find("search;candidate 1\n"), std::string::npos)
      << OS.str();
}

TEST_F(ProfilerTest, LeafCpuFoldsIntoTheEnclosingStampedPhase) {
  // Candidate is outside the default CPU mask: its time must be charged
  // to the innermost stamped span (the search phase), and no exact-CPU
  // entry may appear for the leaf itself.
  prof::Profiler &P = prof::profiler();
  uint32_t Root = P.enterSpan(SpanKind::Search, "cpu_phase");
  uint32_t Leaf = P.enterSpan(SpanKind::Candidate, "cpu_leaf");
  spinCpuNs(3000000); // 3ms inside the unstamped leaf
  P.exitSpan(Leaf);
  P.exitSpan(Root);

  prof::ProfileSnapshot S = P.snapshot();
  ASSERT_EQ(S.Cpu.count("cpu_phase"), 1u);
  EXPECT_EQ(S.Cpu.count("cpu_leaf"), 0u);
  EXPECT_GE(S.Cpu["cpu_phase"].SelfNs, 3000000u);
  EXPECT_EQ(S.Cpu["cpu_phase"].Enters, 1u);
}

TEST_F(ProfilerTest, NestedStampedSpansSplitSelfTime) {
  // Self-time accounting: the outer phase is only charged for the time
  // the inner stamped phase was *not* running.
  prof::Profiler &P = prof::profiler();
  uint32_t Outer = P.enterSpan(SpanKind::Search, "outer_phase");
  spinCpuNs(2000000);
  uint32_t Inner = P.enterSpan(SpanKind::Rank, "inner_phase");
  spinCpuNs(2000000);
  P.exitSpan(Inner);
  P.exitSpan(Outer);

  prof::ProfileSnapshot S = P.snapshot();
  ASSERT_EQ(S.Cpu.count("outer_phase"), 1u);
  ASSERT_EQ(S.Cpu.count("inner_phase"), 1u);
  EXPECT_GE(S.Cpu["outer_phase"].SelfNs, 2000000u);
  EXPECT_GE(S.Cpu["inner_phase"].SelfNs, 2000000u);
  // Neither span absorbs the other's work: each self-time stays near
  // its own 2ms (well under the 4ms total).
  EXPECT_LT(S.Cpu["outer_phase"].SelfNs, 3500000u);
  EXPECT_LT(S.Cpu["inner_phase"].SelfNs, 3500000u);
}

TEST_F(ProfilerTest, SnapshotDeltaIsolatesAWindow) {
  prof::Profiler &P = prof::profiler();
  uint32_t Span = P.enterSpan(SpanKind::Search, "window_span");
  P.sampleOnce();
  P.sampleOnce();
  prof::ProfileSnapshot Before = P.snapshot();
  P.sampleOnce();
  P.sampleOnce();
  P.sampleOnce();
  prof::ProfileSnapshot D = P.snapshot().deltaFrom(Before);
  P.exitSpan(Span);
  EXPECT_EQ(D.Samples, 3u);
  EXPECT_EQ(D.Stacks["window_span"], 3u);
  EXPECT_EQ(D.Stacks.size(), 1u) << "unchanged entries must be dropped";
  EXPECT_EQ(stackSum(D), D.Samples);
}

TEST_F(ProfilerTest, OutOfOrderExitDoesNotCorruptTheStack) {
  // Run on a fresh thread so the deliberately unbalanced state is
  // parked (and reset on reuse) instead of leaking into later tests.
  std::thread([] {
    prof::Profiler &P = prof::profiler();
    uint32_t Parent = P.enterSpan(SpanKind::Search, "oo_parent");
    uint32_t Child = P.enterSpan(SpanKind::Localize, "oo_child");
    P.exitSpan(Parent); // out of order: must be a guarded no-op
    P.sampleOnce();
    P.exitSpan(Child); // the child pops itself to its own position
    P.sampleOnce();
  }).join();
  prof::ProfileSnapshot S = prof::profiler().snapshot();
  EXPECT_EQ(S.Stacks["oo_parent;oo_child"], 1u)
      << "the early parent exit must not unwind the live child";
  EXPECT_EQ(S.Stacks["oo_parent"], 1u);
}

TEST_F(ProfilerTest, ZeroTokensAreSafeToExit) {
  prof::profiler().exitSpan(0); // "nothing recorded" token: no-op
  EXPECT_EQ(prof::profiler().snapshot().Samples, 0u);
}

TEST_F(ProfilerTest, DeepStacksTruncateButKeepCounting) {
  prof::Profiler &P = prof::profiler();
  std::vector<uint32_t> Tokens;
  for (unsigned I = 0; I < prof::Profiler::MaxDepth + 8; ++I)
    Tokens.push_back(P.enterSpan(SpanKind::Candidate, "deep"));
  P.sampleOnce();
  for (auto It = Tokens.rbegin(); It != Tokens.rend(); ++It)
    P.exitSpan(*It);

  prof::ProfileSnapshot S = P.snapshot();
  EXPECT_EQ(S.Samples, 1u);
  EXPECT_EQ(S.Truncated, 1u);
  ASSERT_EQ(S.Stacks.size(), 1u);
  // The folded key keeps exactly MaxDepth frames; the tail is clipped.
  const std::string &Key = S.Stacks.begin()->first;
  EXPECT_EQ(std::count(Key.begin(), Key.end(), ';'),
            long(prof::Profiler::MaxDepth - 1));
}

TEST_F(ProfilerTest, JsonExportCarriesStacksAndExactCpu) {
  prof::Profiler &P = prof::profiler();
  uint32_t Span = P.enterSpan(SpanKind::Search, "json_span");
  spinCpuNs(1000000);
  P.sampleOnce();
  P.exitSpan(Span);
  std::ostringstream OS;
  P.snapshot().writeJson(OS);
  std::string Text = OS.str();
  EXPECT_NE(Text.find("\"samples\":1"), std::string::npos) << Text;
  EXPECT_NE(Text.find("\"stack\":\"json_span\",\"count\":1"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("\"name\":\"json_span\",\"self_ns\":"),
            std::string::npos)
      << Text;
}

TEST_F(ProfilerTest, CaptureDeltaHonorsTheAbortFlag) {
  std::atomic<bool> Abort{true};
  auto Start = std::chrono::steady_clock::now();
  prof::ProfileSnapshot D = prof::profiler().captureDelta(30000, &Abort);
  auto Elapsed = std::chrono::steady_clock::now() - Start;
  EXPECT_LT(Elapsed, std::chrono::seconds(5))
      << "an aborted capture must return immediately, not sleep 30s";
  EXPECT_EQ(D.Samples, 0u);
}

//===----------------------------------------------------------------------===//
// Sampling under thread churn (the TSan job runs this)
//===----------------------------------------------------------------------===//

TEST_F(ProfilerTest, SamplingUnderThreadChurnNeverTearsACount) {
  prof::Profiler &P = prof::profiler();
  std::atomic<bool> Stop{false};
  std::thread Sampler([&P, &Stop] {
    while (!Stop.load(std::memory_order_relaxed))
      P.sampleOnce();
  });
  // Threads are born, push spans, and die while the sampler free-runs;
  // thread-state reuse (FreeStates) is exercised by the round structure.
  for (int Round = 0; Round < 8; ++Round) {
    std::vector<std::thread> Workers;
    for (int T = 0; T < 4; ++T)
      Workers.emplace_back([&P] {
        for (int I = 0; I < 200; ++I) {
          uint32_t A = P.enterSpan(SpanKind::Search, "churn_root");
          uint32_t B = P.enterSpan(SpanKind::Candidate, "churn_leaf");
          P.exitSpan(B);
          P.exitSpan(A);
        }
      });
    for (std::thread &W : Workers)
      W.join();
  }
  Stop.store(true, std::memory_order_relaxed);
  Sampler.join();

  prof::ProfileSnapshot S = P.snapshot();
  // The torn-read contract: a racing sample may fold a stale or partial
  // stack, but counts are never lost or invented and keys are always
  // well-formed frame sequences.
  EXPECT_EQ(stackSum(S), S.Samples);
  for (const auto &[Key, Count] : S.Stacks) {
    EXPECT_GT(Count, 0u);
    ASSERT_FALSE(Key.empty());
    EXPECT_NE(Key.front(), ';') << Key;
    EXPECT_NE(Key.back(), ';') << Key;
    EXPECT_EQ(Key.find(";;"), std::string::npos) << Key;
  }
}

//===----------------------------------------------------------------------===//
// The observational guarantee: profiling never changes answers
//===----------------------------------------------------------------------===//

const char *IdentitySource = "let inc x = x + 1\n"
                             "let twice f y = f (f y)\n"
                             "let out = twice inc true\n";

std::vector<std::string> runAndRender(const char *Source) {
  SeminalOptions Opts;
  SeminalReport R = runSeminalOnSource(Source, Opts);
  std::vector<std::string> Out;
  Out.push_back(R.conventionalMessage());
  for (const Suggestion &S : R.Suggestions)
    Out.push_back(renderSuggestion(S, Opts.Message));
  Out.push_back("oracle_calls=" + std::to_string(R.OracleCalls));
  Out.push_back("inference_runs=" + std::to_string(R.InferenceRuns));
  return Out;
}

TEST(ProfilerIdentityTest, SuggestionsAreByteIdenticalWithProfilingOn) {
  ASSERT_FALSE(prof::enabled());
  std::vector<std::string> Off = runAndRender(IdentitySource);

  // High sampling rate so the run is actually sampled mid-flight.
  prof::Profiler::Options PO;
  PO.SampleHz = 1000;
  prof::profiler().start(PO);
  std::vector<std::string> On = runAndRender(IdentitySource);
  prof::profiler().stop();

  EXPECT_EQ(On, Off)
      << "the profiler observes the span stream; it must never steer it";
}

} // namespace
