//===- EnumeratorTest.cpp - Tests for the constructive-change catalog -----==//
//
// Covers every row of the paper's Figure 3 plus the Caml special cases,
// and the gating/laziness structure of Section 2.2.
//
//===----------------------------------------------------------------------===//

#include "core/Enumerator.h"
#include "minicaml/Parser.h"
#include "minicaml/Printer.h"

#include <gtest/gtest.h>

using namespace seminal;
using namespace seminal::caml;

namespace {

ExprPtr expr(const std::string &Source) {
  ParseExprResult R = parseExpression(Source);
  EXPECT_TRUE(R.ok()) << (R.Error ? R.Error->str() : "");
  return std::move(R.E);
}

/// All non-probe replacements, rendered.
std::vector<std::string> renderedChanges(const std::string &Source,
                                         EnumeratorOptions Opts = {}) {
  ExprPtr E = expr(Source);
  std::vector<std::string> Out;
  for (auto &C : enumerateChanges(*E, Opts))
    if (!C.IsProbe)
      Out.push_back(printExpr(*C.Replacement));
  return Out;
}

bool contains(const std::vector<std::string> &Haystack,
              const std::string &Needle) {
  for (const auto &S : Haystack)
    if (S == Needle)
      return true;
  return false;
}

std::string dump(const std::vector<std::string> &Items) {
  std::string Out;
  for (const auto &S : Items)
    Out += "  " + S + "\n";
  return Out;
}

// Figure 3, row 1: remove an argument from a function call.
TEST(EnumeratorTest, RemoveArgument) {
  auto Changes = renderedChanges("f a1 a2 a3");
  EXPECT_TRUE(contains(Changes, "f a2 a3")) << dump(Changes);
  EXPECT_TRUE(contains(Changes, "f a1 a3")) << dump(Changes);
  EXPECT_TRUE(contains(Changes, "f a1 a2")) << dump(Changes);
}

// Figure 3, row 2: add an argument to a function call.
TEST(EnumeratorTest, AddArgument) {
  auto Changes = renderedChanges("f a1 a2 a3");
  EXPECT_TRUE(contains(Changes, "f a1 [[...]] a2 a3")) << dump(Changes);
  EXPECT_TRUE(contains(Changes, "f a1 a2 a3 [[...]]")) << dump(Changes);
  EXPECT_TRUE(contains(Changes, "f [[...]] a1 a2 a3")) << dump(Changes);
}

// Figure 3, row 3: reorder arguments in a function call.
TEST(EnumeratorTest, ReorderArguments) {
  auto Changes = renderedChanges("f a1 a2 a3");
  EXPECT_TRUE(contains(Changes, "f a3 a2 a1")) << dump(Changes); // reversal
  EXPECT_TRUE(contains(Changes, "f a2 a1 a3")) << dump(Changes); // swap
  EXPECT_TRUE(contains(Changes, "f a1 a3 a2")) << dump(Changes); // swap
}

// Figure 3, row 4: reassociate to make a nested call.
TEST(EnumeratorTest, ReassociateNestedCall) {
  auto Changes = renderedChanges("f a1 a2 a3");
  EXPECT_TRUE(contains(Changes, "f (a1 a2 a3)")) << dump(Changes);
}

// Figure 3, row 5: put call-arguments in a tuple.
TEST(EnumeratorTest, TupleTheArguments) {
  auto Changes = renderedChanges("f a1 a2 a3");
  EXPECT_TRUE(contains(Changes, "f (a1, a2, a3)")) << dump(Changes);
}

// Figure 3, row 6: curry arguments instead of tupling.
TEST(EnumeratorTest, CurryTheTuple) {
  auto Changes = renderedChanges("f (a1, a2, a3)");
  EXPECT_TRUE(contains(Changes, "f a1 a2 a3")) << dump(Changes);
}

// Figure 3, row 7: replace reference-update with field-update.
TEST(EnumeratorTest, RefUpdateToFieldUpdate) {
  auto Changes = renderedChanges("e1.fld := e2");
  EXPECT_TRUE(contains(Changes, "e1.fld <- e2")) << dump(Changes);
}

// Figure 3, row 8: make an n-element list, not a 1-element list of a
// tuple ([e1, e2, e3] parses as [(e1, e2, e3)]).
TEST(EnumeratorTest, CommaListToSemicolonList) {
  auto Changes = renderedChanges("[e1, e2, e3]");
  EXPECT_TRUE(contains(Changes, "[e1; e2; e3]")) << dump(Changes);
}

// Figure 3, row 9: make a function recursive (let-in form).
TEST(EnumeratorTest, MakeLetRecursive) {
  auto Changes = renderedChanges("let f x = e1 in e2");
  EXPECT_TRUE(contains(Changes, "let rec f x = e1 in e2")) << dump(Changes);
}

TEST(EnumeratorTest, RemoveSpuriousRec) {
  auto Changes = renderedChanges("let rec f x = e1 in e2");
  EXPECT_TRUE(contains(Changes, "let f x = e1 in e2")) << dump(Changes);
}

// Section 2.2: tupled parameter to curried parameters (the Figure 2 fix).
TEST(EnumeratorTest, CurryTupledParameter) {
  auto Changes = renderedChanges("fun (x, y) -> x + y");
  EXPECT_TRUE(contains(Changes, "fun x y -> x + y")) << dump(Changes);
}

TEST(EnumeratorTest, TupleCurriedParameters) {
  auto Changes = renderedChanges("fun x y -> x + y");
  EXPECT_TRUE(contains(Changes, "fun (x, y) -> x + y")) << dump(Changes);
}

TEST(EnumeratorTest, AddAndRemoveParameters) {
  auto Changes = renderedChanges("fun x y -> x");
  EXPECT_TRUE(contains(Changes, "fun x y _ -> x")) << dump(Changes);
  EXPECT_TRUE(contains(Changes, "fun _ x y -> x")) << dump(Changes);
  EXPECT_TRUE(contains(Changes, "fun y -> x")) << dump(Changes);
  EXPECT_TRUE(contains(Changes, "fun x -> x")) << dump(Changes);
}

// Caml idiosyncrasies: operators.
TEST(EnumeratorTest, PlusToConcat) {
  auto Changes = renderedChanges("a + b");
  EXPECT_TRUE(contains(Changes, "a ^ b")) << dump(Changes);
}

TEST(EnumeratorTest, ConcatToPlus) {
  auto Changes = renderedChanges("a ^ b");
  EXPECT_TRUE(contains(Changes, "a + b")) << dump(Changes);
}

TEST(EnumeratorTest, EqualsVsAssign) {
  auto EqChanges = renderedChanges("x = 3");
  EXPECT_TRUE(contains(EqChanges, "x := 3")) << dump(EqChanges);
  auto AssignChanges = renderedChanges("x := 3");
  EXPECT_TRUE(contains(AssignChanges, "x = 3")) << dump(AssignChanges);
  EXPECT_TRUE(contains(AssignChanges, "x := !3")) << dump(AssignChanges);
}

TEST(EnumeratorTest, DerefOperands) {
  auto Changes = renderedChanges("r + 1");
  EXPECT_TRUE(contains(Changes, "!r + 1")) << dump(Changes);
}

TEST(EnumeratorTest, ConsVsAppend) {
  auto ConsChanges = renderedChanges("a :: b");
  EXPECT_TRUE(contains(ConsChanges, "a @ b")) << dump(ConsChanges);
  EXPECT_TRUE(contains(ConsChanges, "a :: [b]")) << dump(ConsChanges);
  auto AppendChanges = renderedChanges("a @ b");
  EXPECT_TRUE(contains(AppendChanges, "a :: b")) << dump(AppendChanges);
}

TEST(EnumeratorTest, AddElseBranch) {
  auto Changes = renderedChanges("if c then e");
  EXPECT_TRUE(contains(Changes, "if c then e else [[...]]"))
      << dump(Changes);
}

TEST(EnumeratorTest, ConstructorArityChanges) {
  auto Nullary = renderedChanges("None");
  EXPECT_TRUE(contains(Nullary, "None [[...]]")) << dump(Nullary);
  auto Unary = renderedChanges("Some x");
  EXPECT_TRUE(contains(Unary, "Some")) << dump(Unary);
  EXPECT_TRUE(contains(Unary, "Some (x, [[...]])")) << dump(Unary);
}

TEST(EnumeratorTest, FieldUpdateToRefUpdate) {
  auto Changes = renderedChanges("e.f <- v");
  EXPECT_TRUE(contains(Changes, "e.f := v")) << dump(Changes);
}

TEST(EnumeratorTest, NestedMatchReparenthesizing) {
  auto Changes =
      renderedChanges("match x with 0 -> match y with 1 -> a | _ -> b");
  // One split is possible: move the inner match's last arm outward.
  bool FoundSplit = false;
  for (const auto &S : Changes)
    if (S.find("| _ -> b") != std::string::npos &&
        S.find("match y with 1 -> a") != std::string::npos)
      FoundSplit = true;
  EXPECT_TRUE(FoundSplit) << dump(Changes);
}

TEST(EnumeratorTest, MatchReparenCanBeDisabled) {
  EnumeratorOptions Opts;
  Opts.EnableMatchReparen = false;
  auto Changes = renderedChanges(
      "match x with 0 -> match y with 1 -> a | _ -> b", Opts);
  EXPECT_TRUE(Changes.empty()) << dump(Changes);
}

// Gating: permutations hide behind a probe when gating is on.
TEST(EnumeratorTest, PermutationsAreGated) {
  ExprPtr E = expr("f a1 a2 a3");
  EnumeratorOptions Gated;
  auto Changes = enumerateChanges(*E, Gated);
  bool HasProbe = false;
  for (auto &C : Changes)
    if (C.IsProbe) {
      HasProbe = true;
      // Probe success expands into permutations.
      auto Follow = C.FollowUps(true);
      EXPECT_FALSE(Follow.empty());
      // Probe failure expands into nothing.
      auto None = C.FollowUps(false);
      EXPECT_TRUE(None.empty());
    }
  EXPECT_TRUE(HasProbe);
}

TEST(EnumeratorTest, UngatedEmitsPermutationsEagerly) {
  ExprPtr E = expr("f a1 a2 a3 a4");
  EnumeratorOptions Ungated;
  Ungated.GateExpensiveChanges = false;
  size_t UngatedCount = enumerateChanges(*E, Ungated).size();
  EnumeratorOptions Gated;
  size_t GatedCount = enumerateChanges(*E, Gated).size();
  EXPECT_GT(UngatedCount, GatedCount);
}

TEST(EnumeratorTest, TuplePermutationsGatedLikeThePaper) {
  // (e1, e2, e3) -> probe ([[...]], [[...]], [[...]]) then permutations.
  ExprPtr E = expr("(e1, e2, e3)");
  EnumeratorOptions Opts;
  bool HasProbe = false;
  for (auto &C : enumerateChanges(*E, Opts)) {
    if (!C.IsProbe)
      continue;
    HasProbe = true;
    EXPECT_EQ(printExpr(*C.Replacement), "([[...]], [[...]], [[...]])");
    auto Perms = C.FollowUps(true);
    EXPECT_EQ(Perms.size(), 5u); // 3! - 1 identity
  }
  EXPECT_TRUE(HasProbe);
}

TEST(EnumeratorTest, LeavesProduceNothing) {
  EXPECT_TRUE(renderedChanges("x").empty());
  EXPECT_TRUE(renderedChanges("42").empty());
  EXPECT_TRUE(renderedChanges("\"s\"").empty());
}

// Declaration-level changes.
TEST(EnumeratorDeclTest, ToggleRec) {
  ParseResult R = parseProgram("let f x = f x");
  ASSERT_TRUE(R.ok());
  auto Changes = enumerateDeclChanges(*R.Prog->Decls[0]);
  bool FoundRec = false;
  for (auto &DC : Changes)
    if (printDecl(*DC.Replacement) == "let rec f x = f x")
      FoundRec = true;
  EXPECT_TRUE(FoundRec);
}

TEST(EnumeratorDeclTest, CurryDeclParameters) {
  ParseResult R = parseProgram("let f (x, y) = x + y");
  ASSERT_TRUE(R.ok());
  auto Changes = enumerateDeclChanges(*R.Prog->Decls[0]);
  bool Found = false;
  for (auto &DC : Changes)
    if (printDecl(*DC.Replacement) == "let f x y = x + y")
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(EnumeratorDeclTest, TypeDeclsHaveNoChanges) {
  ParseResult R = parseProgram("type t = A | B");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(enumerateDeclChanges(*R.Prog->Decls[0]).empty());
}

} // namespace
