//===- InferAdvancedTest.cpp - Corner cases of the HM oracle --------------==//
//
// The searcher pounds the checker with thousands of strange variants, so
// the checker's corners matter: shadowing, generalization levels, the
// value restriction across declarations, exception payloads in patterns,
// polymorphic containers, and the interplay of wildcard/adapt nodes with
// inference.
//
//===----------------------------------------------------------------------===//

#include "minicaml/Infer.h"
#include "minicaml/Parser.h"

#include <gtest/gtest.h>

using namespace seminal;
using namespace seminal::caml;

namespace {

TypecheckResult check(const std::string &Source) {
  ParseResult R = parseProgram(Source);
  EXPECT_TRUE(R.ok()) << (R.Error ? R.Error->str() : "");
  return typecheckProgram(*R.Prog);
}

std::string typeOf(const TypecheckResult &R, const std::string &Name) {
  for (const auto &[N, T] : R.TopLevelTypes)
    if (N == Name)
      return T;
  return "<missing>";
}

TEST(InferAdvancedTest, ShadowingPicksInnermost) {
  TypecheckResult R = check("let x = 1\n"
                            "let f x = x ^ \"!\"\n"
                            "let y = x + 1");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "f"), "string -> string");
  EXPECT_EQ(typeOf(R, "y"), "int");
}

TEST(InferAdvancedTest, LetShadowingInsideExpression) {
  TypecheckResult R = check("let v = let x = 1 in let x = \"s\" in x");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "v"), "string");
}

TEST(InferAdvancedTest, GeneralizationDoesNotLeakInnerVariables) {
  // The classic level test: x is monomorphic inside f's body even though
  // y's binding is generalized at the inner let.
  TypecheckResult R = check("let f = fun x -> let y = x in y");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "f"), "'a -> 'a");
}

TEST(InferAdvancedTest, InnerLetMonomorphicUseStillFails) {
  // x is lambda-bound, so using it at two types must fail even through
  // an intermediate let.
  TypecheckResult R =
      check("let f = fun x -> let y = x in (y 1, y \"s\")");
  EXPECT_FALSE(R.ok());
}

TEST(InferAdvancedTest, ValueRestrictionAcrossDeclarations) {
  // The unsound-without-restriction program: a ref cell shared at two
  // element types.
  TypecheckResult R = check("let cell = ref []\n"
                            "let push () = cell := [1]\n"
                            "let read () = match !cell with\n"
                            "    [] -> \"empty\" | s :: _ -> s");
  EXPECT_FALSE(R.ok());
}

TEST(InferAdvancedTest, FunctionResultsGeneralize) {
  // Function sugar is a syntactic value: full polymorphism.
  TypecheckResult R = check("let pair x y = (x, y)\n"
                            "let a = pair 1 \"s\"\n"
                            "let b = pair true ()");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "pair"), "'a -> 'b -> 'a * 'b");
}

TEST(InferAdvancedTest, ApplicationResultsDoNotGeneralize) {
  // `id id` is not a value; its type stays weakly polymorphic and the
  // two later uses at different types must clash.
  TypecheckResult R = check("let id x = x\n"
                            "let weak = id id\n"
                            "let a = weak 1\n"
                            "let b = weak \"s\"");
  EXPECT_FALSE(R.ok());
}

TEST(InferAdvancedTest, ExceptionPayloadInMatchPattern) {
  TypecheckResult R = check("exception Bad of string\n"
                            "let describe e = match e with\n"
                            "    Bad msg -> msg\n"
                            "  | Not_found -> \"not found\"\n"
                            "  | _ -> \"other\"");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "describe"), "exn -> string");
}

TEST(InferAdvancedTest, PolymorphicTreeOperations) {
  TypecheckResult R = check(
      "type 'a tree = Leaf | Node of 'a tree * 'a * 'a tree\n"
      "let rec insert x t = match t with\n"
      "    Leaf -> Node (Leaf, x, Leaf)\n"
      "  | Node (l, v, r) ->\n"
      "      if x < v then Node (insert x l, v, r)\n"
      "      else Node (l, v, insert x r)\n"
      "let ints = insert 3 (insert 1 Leaf)\n"
      "let strs = insert \"b\" (insert \"a\" Leaf)");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "insert"), "'a -> 'a tree -> 'a tree");
  EXPECT_EQ(typeOf(R, "ints"), "int tree");
  EXPECT_EQ(typeOf(R, "strs"), "string tree");
}

TEST(InferAdvancedTest, MutualShadowOfStdlib) {
  TypecheckResult R = check("let max a b = a ^ b\n"
                            "let m = max \"x\" \"y\"");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "max"), "string -> string -> string");
}

TEST(InferAdvancedTest, CurriedPartialApplications) {
  TypecheckResult R = check("let add3 a b c = a + b + c\n"
                            "let f = add3 1\n"
                            "let g = f 2\n"
                            "let h = g 3");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "f"), "int -> int -> int");
  EXPECT_EQ(typeOf(R, "g"), "int -> int");
  EXPECT_EQ(typeOf(R, "h"), "int");
}

TEST(InferAdvancedTest, RecordParameterInferredFromField) {
  TypecheckResult R = check("type p = { px : int; py : int }\n"
                            "let norm v = v.px * v.px + v.py * v.py");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "norm"), "p -> int");
}

TEST(InferAdvancedTest, SetFieldResultIsUnit) {
  TypecheckResult R = check("type c = { mutable v : int }\n"
                            "let bump r = r.v <- r.v + 1");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "bump"), "c -> unit");
}

TEST(InferAdvancedTest, NestedRefs) {
  TypecheckResult R = check("let rr = ref (ref 1)\n"
                            "let v = ! !rr + 1");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "rr"), "int ref ref");
}

TEST(InferAdvancedTest, WildcardNodeTypechecksEverywhere) {
  // Build ASTs with explicit wildcard nodes in assorted positions.
  const char *Sources[] = {
      "let a = 1 + 2",
      "let b = List.map (fun x -> x) [1]",
      "let c = if true then \"a\" else \"b\"",
  };
  for (const char *Src : Sources) {
    ParseResult R = parseProgram(Src);
    ASSERT_TRUE(R.ok());
    // Replace the whole right-hand side with a wildcard: always checks.
    R.Prog->Decls[0]->Rhs = makeWildcard();
    EXPECT_TRUE(typecheckProgram(*R.Prog).ok()) << Src;
  }
}

TEST(InferAdvancedTest, AdaptRequiresInnerWellTypedness) {
  // adapt (1 + "x") must fail even in an unconstrained context.
  ParseResult R = parseProgram("let a = 0");
  ASSERT_TRUE(R.ok());
  ParseExprResult Bad = parseExpression("1 + \"x\"");
  R.Prog->Decls[0]->Rhs = makeAdapt(std::move(Bad.E));
  EXPECT_FALSE(typecheckProgram(*R.Prog).ok());

  ParseExprResult Good = parseExpression("1 + 2");
  R.Prog->Decls[0]->Rhs = makeAdapt(std::move(Good.E));
  EXPECT_TRUE(typecheckProgram(*R.Prog).ok());
}

TEST(InferAdvancedTest, DeepCurriedHigherOrder) {
  TypecheckResult R =
      check("let apply2 f g x = f (g x)\n"
            "let inc x = x + 1\n"
            "let shout s = s ^ \"!\"\n"
            "let pipeline = apply2 shout string_of_int\n"
            "let out = pipeline 3");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "out"), "string");
}

TEST(InferAdvancedTest, EqualityOnFunctionsStillTypechecks) {
  // Structural equality is 'a -> 'a -> bool; comparing functions is a
  // runtime error in OCaml but type-checks.
  TypecheckResult R = check("let f x = x + 1\nlet same = f = f");
  EXPECT_TRUE(R.ok());
}

TEST(InferAdvancedTest, TypesAllocatedIsReported) {
  TypecheckResult R = check("let x = List.map (fun v -> v + 1) [1; 2]");
  EXPECT_TRUE(R.ok());
  EXPECT_GT(R.TypesAllocated, 10u);
}

} // namespace
