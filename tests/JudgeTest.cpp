//===- JudgeTest.cpp - Unit tests for the message-quality judge -----------==//
//
// The judge mechanizes the paper's Section 3.1 manual analysis; these
// tests pin its edge cases: pathDistance on same-node / divergent /
// cross-declaration paths, the per-suggestion grading criteria (edit
// kinds vs location-only hints, the large-removal penalty), best-match
// judging against multiple mutations, and rank-of-true-fix.
//
//===----------------------------------------------------------------------==//

#include "eval/Judge.h"

#include <gtest/gtest.h>

using namespace seminal;
using caml::NodePath;

namespace {

NodePath makePath(unsigned Decl, std::initializer_list<unsigned> Steps) {
  NodePath P(Decl);
  for (unsigned S : Steps)
    P = P.descend(S);
  return P;
}

GroundTruth makeTruth(const NodePath &Path) {
  GroundTruth T;
  T.Kind = MutationKind::SwapCallArgs;
  T.Path = Path;
  return T;
}

Suggestion makeSuggestion(ChangeKind Kind, const NodePath &Path,
                          unsigned OriginalSize = 1) {
  Suggestion S;
  S.Kind = Kind;
  S.Path = Path;
  S.OriginalSize = OriginalSize;
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// pathDistance
//===----------------------------------------------------------------------===//

TEST(PathDistanceTest, SameNodeIsZero) {
  NodePath P = makePath(0, {1, 2});
  EXPECT_EQ(pathDistance(P, P), std::optional<unsigned>(0));
  // The empty path (a whole declaration) against itself, too.
  EXPECT_EQ(pathDistance(NodePath(3), NodePath(3)),
            std::optional<unsigned>(0));
}

TEST(PathDistanceTest, AncestorDistanceCountsEdges) {
  NodePath Root = makePath(0, {});
  NodePath Child = makePath(0, {1});
  NodePath GrandChild = makePath(0, {1, 0});
  EXPECT_EQ(pathDistance(Root, Child), std::optional<unsigned>(1));
  EXPECT_EQ(pathDistance(Root, GrandChild), std::optional<unsigned>(2));
  // Symmetric: descendant-to-ancestor is the same distance.
  EXPECT_EQ(pathDistance(GrandChild, Root), std::optional<unsigned>(2));
}

TEST(PathDistanceTest, DifferentDeclarationsNeverCompare) {
  EXPECT_EQ(pathDistance(makePath(0, {1}), makePath(1, {1})), std::nullopt);
  // Even the trivial whole-declaration paths.
  EXPECT_EQ(pathDistance(NodePath(0), NodePath(1)), std::nullopt);
}

TEST(PathDistanceTest, DivergentSubtreesNeverCompare) {
  // Siblings: common ancestor, but neither is a prefix of the other.
  EXPECT_EQ(pathDistance(makePath(0, {0}), makePath(0, {1})), std::nullopt);
  // Diverge below a shared prefix.
  EXPECT_EQ(pathDistance(makePath(0, {2, 0, 1}), makePath(0, {2, 1})),
            std::nullopt);
}

//===----------------------------------------------------------------------===//
// judgeSuggestion
//===----------------------------------------------------------------------===//

TEST(JudgeSuggestionTest, ConstructiveEditAtTruthIsAccurate) {
  NodePath Truth = makePath(0, {1, 0});
  std::vector<GroundTruth> Truths = {makeTruth(Truth)};
  EXPECT_EQ(judgeSuggestion(makeSuggestion(ChangeKind::Constructive, Truth),
                            Truths),
            Quality::Accurate);
  // One tree edge away still names the right place precisely enough.
  EXPECT_EQ(judgeSuggestion(
                makeSuggestion(ChangeKind::Constructive, makePath(0, {1})),
                Truths),
            Quality::Accurate);
}

TEST(JudgeSuggestionTest, RemovalIsAtBestGoodLocation) {
  // A removal *hints* at the location but proposes no edit: even pinned
  // on exactly the mutated node it grades GoodLocation (see Judge.cpp on
  // Section 3.3's unbound-variable improvement).
  NodePath Truth = makePath(0, {1});
  std::vector<GroundTruth> Truths = {makeTruth(Truth)};
  EXPECT_EQ(judgeSuggestion(makeSuggestion(ChangeKind::Removal, Truth),
                            Truths),
            Quality::GoodLocation);
}

TEST(JudgeSuggestionTest, AdaptationAccurateOnlyAtExactNode) {
  NodePath Truth = makePath(0, {1});
  std::vector<GroundTruth> Truths = {makeTruth(Truth)};
  // Pinned exactly: names the expected type at the right place.
  EXPECT_EQ(judgeSuggestion(makeSuggestion(ChangeKind::Adaptation, Truth),
                            Truths),
            Quality::Accurate);
  // One edge off: location hint only.
  EXPECT_EQ(judgeSuggestion(
                makeSuggestion(ChangeKind::Adaptation, makePath(0, {})),
                Truths),
            Quality::GoodLocation);
}

TEST(JudgeSuggestionTest, LargeRemovalIsPoorEvenAtTruth) {
  // "Suggesting this entire code fragment be replaced does not help the
  // programmer" (Section 2.4).
  NodePath Truth = makePath(0, {1});
  std::vector<GroundTruth> Truths = {makeTruth(Truth)};
  EXPECT_EQ(judgeSuggestion(
                makeSuggestion(ChangeKind::Removal, Truth, /*OriginalSize=*/7),
                Truths),
            Quality::Poor);
  EXPECT_EQ(judgeSuggestion(makeSuggestion(ChangeKind::Adaptation, Truth,
                                           /*OriginalSize=*/7),
                            Truths),
            Quality::Poor);
  // A constructive edit of the same size is not penalized.
  EXPECT_EQ(judgeSuggestion(makeSuggestion(ChangeKind::Constructive, Truth,
                                           /*OriginalSize=*/7),
                            Truths),
            Quality::Accurate);
}

TEST(JudgeSuggestionTest, DistanceBandsDegradeToPoor) {
  NodePath Truth = makePath(0, {1, 0, 0, 0});
  std::vector<GroundTruth> Truths = {makeTruth(Truth)};
  // Three edges up: GoodLocation.
  EXPECT_EQ(judgeSuggestion(
                makeSuggestion(ChangeKind::Constructive, makePath(0, {1})),
                Truths),
            Quality::GoodLocation);
  // Four edges up: Poor.
  EXPECT_EQ(judgeSuggestion(
                makeSuggestion(ChangeKind::Constructive, makePath(0, {})),
                Truths),
            Quality::Poor);
  // Divergent subtree: Poor no matter how close in depth.
  EXPECT_EQ(judgeSuggestion(
                makeSuggestion(ChangeKind::Constructive,
                               makePath(0, {1, 0, 0, 1})),
                Truths),
            Quality::Poor);
}

TEST(JudgeSuggestionTest, MultipleMutationsJudgeAgainstBestMatch) {
  // Two injected mutations; the suggestion sits exactly on the second.
  std::vector<GroundTruth> Truths = {makeTruth(makePath(0, {0})),
                                     makeTruth(makePath(1, {2, 1}))};
  EXPECT_EQ(judgeSuggestion(makeSuggestion(ChangeKind::Constructive,
                                           makePath(1, {2, 1})),
                            Truths),
            Quality::Accurate);
  // Near the first truth (one edge), divergent from the second: the
  // *best* distance wins, so this is still Accurate.
  EXPECT_EQ(judgeSuggestion(
                makeSuggestion(ChangeKind::Constructive, makePath(0, {})),
                Truths),
            Quality::Accurate);
  // In a declaration neither mutation touches: Poor.
  EXPECT_EQ(judgeSuggestion(
                makeSuggestion(ChangeKind::Constructive, makePath(2, {})),
                Truths),
            Quality::Poor);
}

//===----------------------------------------------------------------------===//
// rankOfTrueFix
//===----------------------------------------------------------------------===//

TEST(RankOfTrueFixTest, FirstAccurateSuggestionWins) {
  NodePath Truth = makePath(0, {1});
  std::vector<GroundTruth> Truths = {makeTruth(Truth)};

  SeminalReport Report;
  // Rank 1: a removal at the truth -- GoodLocation, not the true fix.
  Report.Suggestions.push_back(makeSuggestion(ChangeKind::Removal, Truth));
  // Rank 2: the constructive edit at the truth -- Accurate.
  Report.Suggestions.push_back(
      makeSuggestion(ChangeKind::Constructive, Truth));
  EXPECT_EQ(rankOfTrueFix(Report, Truths), 2);
}

TEST(RankOfTrueFixTest, ZeroWhenNoSuggestionIsAccurate) {
  std::vector<GroundTruth> Truths = {makeTruth(makePath(0, {1}))};

  SeminalReport Empty;
  EXPECT_EQ(rankOfTrueFix(Empty, Truths), 0);

  SeminalReport OffTarget;
  OffTarget.Suggestions.push_back(
      makeSuggestion(ChangeKind::Constructive, makePath(1, {0})));
  EXPECT_EQ(rankOfTrueFix(OffTarget, Truths), 0);
}
