//===- JsonTestUtil.h - Shared JSON syntax validator for tests --*- C++ -*-==//
//
// A minimal JSON validator (syntax only), enough to certify exporter
// output without a JSON library dependency. Shared by the trace,
// observability, and CLI tests -- every machine-readable artifact the
// toolchain emits gets checked through the same parser.
//
//===----------------------------------------------------------------------===//

#ifndef SEMINAL_TESTS_JSONTESTUTIL_H
#define SEMINAL_TESTS_JSONTESTUTIL_H

#include <cctype>
#include <cstring>
#include <string>

namespace seminal {

class JsonValidator {
public:
  explicit JsonValidator(std::string Text) : S(std::move(Text)) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  std::string S;
  size_t Pos = 0;

  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }
  bool consume(char C) {
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }
  bool literal(const char *Lit) {
    size_t N = std::strlen(Lit);
    if (S.compare(Pos, N, Lit) != 0)
      return false;
    Pos += N;
    return true;
  }
  bool string() {
    if (!consume('"'))
      return false;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
        char E = S[Pos];
        if (E == 'u') {
          for (int I = 0; I < 4; ++I) {
            ++Pos;
            if (Pos >= S.size() ||
                !std::isxdigit(static_cast<unsigned char>(S[Pos])))
              return false;
          }
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return false;
        }
      } else if (static_cast<unsigned char>(S[Pos]) < 0x20) {
        return false; // unescaped control character
      }
      ++Pos;
    }
    return consume('"');
  }
  bool number() {
    size_t Start = Pos;
    if (Pos < S.size() && S[Pos] == '-')
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            std::strchr(".eE+-", S[Pos])))
      ++Pos;
    return Pos > Start;
  }
  bool value() {
    skipWs();
    if (Pos >= S.size())
      return false;
    char C = S[Pos];
    if (C == '{')
      return object();
    if (C == '[')
      return array();
    if (C == '"')
      return string();
    if (C == 't')
      return literal("true");
    if (C == 'f')
      return literal("false");
    if (C == 'n')
      return literal("null");
    return number();
  }
  bool object() {
    if (!consume('{'))
      return false;
    skipWs();
    if (consume('}'))
      return true;
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (!consume(':'))
        return false;
      if (!value())
        return false;
      skipWs();
      if (consume('}'))
        return true;
      if (!consume(','))
        return false;
    }
  }
  bool array() {
    if (!consume('['))
      return false;
    skipWs();
    if (consume(']'))
      return true;
    for (;;) {
      if (!value())
        return false;
      skipWs();
      if (consume(']'))
        return true;
      if (!consume(','))
        return false;
    }
  }
};

} // namespace seminal

#endif // SEMINAL_TESTS_JSONTESTUTIL_H
