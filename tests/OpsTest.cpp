//===- OpsTest.cpp - Live-observability layer tests -------------------------==//
//
// Pins the contracts the scrape path depends on (DESIGN.md section 14):
// LogHistogram's bucket math (exact below 64, bounded relative error
// above, one overflow bucket, merge == single stream), OpsRegistry's
// typed families and both renderers (Prometheus exposition validity,
// JSON that json::parse accepts), the structured logger's level gate
// and both line formats, and the slow-trace ring's bounded-disk
// guarantee.
//
//===----------------------------------------------------------------------===//

#include "obs/Log.h"
#include "obs/OpsRegistry.h"
#include "obs/Slo.h"
#include "obs/SlowTraceRing.h"
#include "support/Histogram.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

using namespace seminal;
using namespace seminal::obs;

namespace {

//===----------------------------------------------------------------------===//
// LogHistogram
//===----------------------------------------------------------------------===//

TEST(LogHistogramTest, EmptyIsAllZeros) {
  LogHistogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.quantile(0.5), 0u);
  HistogramSummary S = H.summarize();
  EXPECT_EQ(S.Count, 0u);
  EXPECT_EQ(S.P99, 0u);
  EXPECT_EQ(S.Mean, 0.0);
}

TEST(LogHistogramTest, SingleSampleIsExactEverywhere) {
  LogHistogram H;
  H.record(42);
  EXPECT_EQ(H.count(), 1u);
  EXPECT_EQ(H.sum(), 42u);
  EXPECT_EQ(H.min(), 42u);
  EXPECT_EQ(H.max(), 42u);
  EXPECT_EQ(H.quantile(0.0), 42u);
  EXPECT_EQ(H.quantile(0.5), 42u);
  EXPECT_EQ(H.quantile(1.0), 42u);
  HistogramSummary S = H.summarize();
  EXPECT_EQ(S.P50, 42u);
  EXPECT_EQ(S.P99, 42u);
  EXPECT_EQ(S.Mean, 42.0);
}

TEST(LogHistogramTest, ValuesBelow64AreExact) {
  LogHistogram H;
  for (uint64_t V = 0; V < 64; ++V)
    H.record(V);
  // Every small value owns a width-1 bucket: quantiles land exactly.
  EXPECT_EQ(H.quantile(0.0), 0u);
  EXPECT_EQ(H.quantile(1.0), 63u);
  for (uint64_t V = 0; V < 64; ++V)
    EXPECT_EQ(LogHistogram::bucketLowerBound(LogHistogram::bucketIndex(V)), V);
}

TEST(LogHistogramTest, QuantileErrorIsBoundedBySubBucketWidth) {
  LogHistogram H;
  std::mt19937_64 Rng(7);
  std::vector<uint64_t> Values;
  for (int I = 0; I < 10000; ++I) {
    uint64_t V = 64 + Rng() % 1000000;
    Values.push_back(V);
    H.record(V);
  }
  std::sort(Values.begin(), Values.end());
  for (double Q : {0.5, 0.9, 0.95, 0.99}) {
    // Same nearest-rank convention as the implementation (1-indexed).
    size_t Rank = std::max<size_t>(
        1, size_t(std::ceil(Q * double(Values.size()))));
    uint64_t Exact = Values[Rank - 1];
    uint64_t Approx = H.quantile(Q);
    // Lower bound of the containing bucket: never above the true value,
    // never more than one sub-bucket (1/32 relative) below it.
    EXPECT_LE(Approx, Exact);
    EXPECT_GE(double(Approx), double(Exact) * (1.0 - 2.0 / 32.0))
        << "q=" << Q << " exact=" << Exact << " approx=" << Approx;
  }
}

TEST(LogHistogramTest, OverflowBucketClampsButTracksRawExtremes) {
  LogHistogram H;
  uint64_t Huge = uint64_t(1) << 50;
  H.record(Huge);
  H.record(Huge + 12345);
  EXPECT_EQ(LogHistogram::bucketIndex(Huge), LogHistogram::NumBuckets - 1);
  EXPECT_EQ(H.count(), 2u);
  // Quantiles saturate at the overflow bucket's lower bound...
  EXPECT_EQ(H.quantile(1.0), uint64_t(1) << 40);
  // ...while min/max keep the raw values.
  EXPECT_EQ(H.min(), Huge);
  EXPECT_EQ(H.max(), Huge + 12345);
}

TEST(LogHistogramTest, BucketIndexIsMonotoneAndLowerBoundInverts) {
  size_t Prev = 0;
  for (uint64_t V = 0; V < (1u << 12); ++V) {
    size_t I = LogHistogram::bucketIndex(V);
    EXPECT_GE(I, Prev);
    EXPECT_LE(LogHistogram::bucketLowerBound(I), V);
    Prev = I;
  }
  // Spot-check large magnitudes across several powers of two.
  for (unsigned Exp = 12; Exp <= 39; ++Exp) {
    uint64_t V = (uint64_t(1) << Exp) + (uint64_t(1) << (Exp - 3));
    size_t I = LogHistogram::bucketIndex(V);
    uint64_t Lo = LogHistogram::bucketLowerBound(I);
    EXPECT_LE(Lo, V);
    EXPECT_GT(double(Lo), double(V) * (1.0 - 2.0 / 32.0));
  }
}

TEST(LogHistogramTest, MergedShardsEqualSingleStream) {
  // The scrape-time merge contract: recording a stream sharded across N
  // histograms and merging them is bit-identical to recording the whole
  // stream into one histogram.
  LogHistogram Shards[4];
  LogHistogram Single;
  std::mt19937_64 Rng(11);
  for (int I = 0; I < 20000; ++I) {
    uint64_t V = Rng() % (uint64_t(1) << 44); // spills into overflow too
    Shards[I % 4].record(V);
    Single.record(V);
  }
  LogHistogram Merged;
  for (LogHistogram &S : Shards)
    Merged.merge(S);
  EXPECT_EQ(Merged.count(), Single.count());
  EXPECT_EQ(Merged.sum(), Single.sum());
  EXPECT_EQ(Merged.min(), Single.min());
  EXPECT_EQ(Merged.max(), Single.max());
  for (size_t I = 0; I < LogHistogram::NumBuckets; ++I)
    ASSERT_EQ(Merged.bucketLoad(I), Single.bucketLoad(I)) << "bucket " << I;
  for (double Q : {0.5, 0.9, 0.99})
    EXPECT_EQ(Merged.quantile(Q), Single.quantile(Q));
}

TEST(LogHistogramTest, ConcurrentRecordLosesNothing) {
  LogHistogram H;
  constexpr int Threads = 4, PerThread = 25000;
  std::vector<std::thread> Workers;
  for (int T = 0; T < Threads; ++T)
    Workers.emplace_back([&H, T] {
      for (int I = 0; I < PerThread; ++I)
        H.record(uint64_t(T) * PerThread + I);
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(H.count(), uint64_t(Threads) * PerThread);
  uint64_t N = uint64_t(Threads) * PerThread;
  EXPECT_EQ(H.sum(), N * (N - 1) / 2);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), N - 1);
}

TEST(LogHistogramTest, MergeUnderConcurrentRecordStress) {
  // The scrape path merges per-shard histograms while shard workers are
  // still recording (DESIGN.md section 15). The relaxed-ordering
  // contract (see Histogram.cpp) promises per-counter atomicity, never
  // cross-counter consistency: a mid-load merge may observe Count ahead
  // of or behind the bucket array, but no increment may be lost, torn
  // or invented. This test races sequential scrape-merges against four
  // recording threads -- the TSan CI job proves the data-race freedom,
  // the assertions pin what relaxed still guarantees.
  constexpr int NumShards = 4, PerShard = 20000, Scrapes = 64;
  LogHistogram Shard[NumShards];
  std::vector<std::thread> Writers;
  for (int T = 0; T < NumShards; ++T)
    Writers.emplace_back([&Shard, T] {
      std::mt19937_64 Rng(uint64_t(T) + 1);
      for (int I = 0; I < PerShard; ++I)
        Shard[T].record(Rng() % (uint64_t(1) << 44));
    });
  uint64_t PrevCount = 0;
  for (int S = 0; S < Scrapes; ++S) {
    LogHistogram Merged;
    for (LogHistogram &H : Shard)
      Merged.merge(H);
    // Per-counter coherence: each shard's Count is monotone, so
    // sequential scrapes see monotone merged counts, bounded by the
    // total the writers will eventually reach.
    uint64_t C = Merged.count();
    EXPECT_GE(C, PrevCount);
    EXPECT_LE(C, uint64_t(NumShards) * PerShard);
    PrevCount = C;
    // Derived views must stay sane mid-load (quantile() degrades to
    // the last populated bucket when Count runs ahead of the buckets).
    HistogramSummary Sum = Merged.summarize();
    EXPECT_LE(Sum.P50, Sum.P99);
    (void)Merged.quantile(0.999);
  }
  for (std::thread &W : Writers)
    W.join();
  // Writers quiesced (join is the release/acquire edge that publishes
  // every counter): a final merge is exact, bucket-for-bucket equal to
  // a single-stream replay from the same seeds.
  LogHistogram Merged, Reference;
  for (LogHistogram &H : Shard)
    Merged.merge(H);
  for (int T = 0; T < NumShards; ++T) {
    std::mt19937_64 Rng(uint64_t(T) + 1);
    for (int I = 0; I < PerShard; ++I)
      Reference.record(Rng() % (uint64_t(1) << 44));
  }
  EXPECT_EQ(Merged.count(), Reference.count());
  EXPECT_EQ(Merged.sum(), Reference.sum());
  EXPECT_EQ(Merged.min(), Reference.min());
  EXPECT_EQ(Merged.max(), Reference.max());
  for (size_t I = 0; I < LogHistogram::NumBuckets; ++I)
    ASSERT_EQ(Merged.bucketLoad(I), Reference.bucketLoad(I)) << "bucket " << I;
}

TEST(LogHistogramTest, ResetDropsEverything) {
  LogHistogram H;
  H.record(5);
  H.record(500);
  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 0u);
  EXPECT_EQ(H.quantile(0.99), 0u);
}

//===----------------------------------------------------------------------===//
// HistogramSnapshot: windowed views without resetting the live histogram
//===----------------------------------------------------------------------===//

TEST(HistogramSnapshotTest, SnapshotAgreesWithTheLiveHistogram) {
  LogHistogram H;
  std::mt19937_64 Rng(3);
  for (int I = 0; I < 5000; ++I)
    H.record(Rng() % 1000000);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, H.count());
  EXPECT_EQ(S.Sum, H.sum());
  EXPECT_EQ(S.Min, H.min());
  EXPECT_EQ(S.Max, H.max());
  for (double Q : {0.5, 0.9, 0.95, 0.99})
    EXPECT_EQ(S.quantile(Q), H.quantile(Q));
  for (size_t I = 0; I < LogHistogram::NumBuckets; ++I)
    ASSERT_EQ(S.Buckets[I], H.bucketLoad(I)) << "bucket " << I;
  HistogramSummary A = S.summarize(), B = H.summarize();
  EXPECT_EQ(A.Count, B.Count);
  EXPECT_EQ(A.P50, B.P50);
  EXPECT_EQ(A.P99, B.P99);
}

TEST(HistogramSnapshotTest, DeltaIsExactlyTheIntervalHistogram) {
  // The windowing contract the SLO tracker rides on: the delta between
  // two snapshots equals a histogram of just the interval's samples.
  LogHistogram H, IntervalOnly;
  for (uint64_t V : {3u, 40u, 700u, 90000u})
    H.record(V);
  HistogramSnapshot Before = H.snapshot();
  for (uint64_t V : {5u, 40u, 123456u}) {
    H.record(V);
    IntervalOnly.record(V);
  }
  HistogramSnapshot D = H.snapshotDelta(Before);
  HistogramSnapshot Ref = IntervalOnly.snapshot();
  EXPECT_EQ(D.Count, 3u);
  EXPECT_EQ(D.Sum, Ref.Sum);
  for (size_t I = 0; I < HistogramSnapshot::NumBuckets; ++I)
    ASSERT_EQ(D.Buckets[I], Ref.Buckets[I]) << "bucket " << I;
  // Min/Max are cumulative statistics with no interval meaning: a delta
  // zeroes them rather than inventing values.
  EXPECT_EQ(D.Min, 0u);
  EXPECT_EQ(D.Max, 0u);
  // An empty interval deltas to an all-zero snapshot.
  HistogramSnapshot Z = H.snapshotDelta(H.snapshot());
  EXPECT_EQ(Z.Count, 0u);
  EXPECT_EQ(Z.Sum, 0u);
  EXPECT_EQ(Z.quantile(0.99), 0u);
  EXPECT_EQ(Z.countAbove(0), 0u);
}

TEST(HistogramSnapshotTest, MergeComposesAdjacentDeltas) {
  // delta(A,C) == delta(A,B) + delta(B,C): a long window stitched from
  // two short ones is exact, which lets the tracker keep a sparse ring.
  LogHistogram H;
  std::mt19937_64 Rng(17);
  auto Burst = [&H, &Rng] {
    for (int I = 0; I < 1000; ++I)
      H.record(Rng() % (uint64_t(1) << 30));
  };
  HistogramSnapshot A = H.snapshot();
  Burst();
  HistogramSnapshot B = H.snapshot();
  Burst();
  HistogramSnapshot C = H.snapshot();
  HistogramSnapshot Long = C.deltaFrom(A);
  HistogramSnapshot Stitched = B.deltaFrom(A);
  Stitched.merge(C.deltaFrom(B));
  EXPECT_EQ(Stitched.Count, Long.Count);
  EXPECT_EQ(Stitched.Sum, Long.Sum);
  for (size_t I = 0; I < HistogramSnapshot::NumBuckets; ++I)
    ASSERT_EQ(Stitched.Buckets[I], Long.Buckets[I]) << "bucket " << I;
  for (double Q : {0.5, 0.99})
    EXPECT_EQ(Stitched.quantile(Q), Long.quantile(Q));
}

TEST(HistogramSnapshotTest, CountAboveIsExactBelowSixtyFour) {
  LogHistogram H;
  for (uint64_t V = 0; V < 64; ++V)
    H.record(V);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.countAbove(0), 63u);
  EXPECT_EQ(S.countAbove(31), 32u);
  EXPECT_EQ(S.countAbove(63), 0u);
  EXPECT_EQ(S.countAbove(1000000), 0u);
}

TEST(HistogramSnapshotTest, CountAboveNeverOvercountsLargeValues) {
  // Above 64 the answer is bucket-quantized: a bucket straddling the
  // threshold counts as "not above", so an SLO target never accuses
  // requests that sit exactly at the target.
  LogHistogram H;
  for (int I = 0; I < 100; ++I)
    H.record(1000);
  for (int I = 0; I < 7; ++I)
    H.record(100000);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.countAbove(1000), 7u);
  EXPECT_EQ(S.countAbove(99), 107u);
  EXPECT_EQ(S.countAbove(100000), 0u);
}

//===----------------------------------------------------------------------===//
// SloTracker: burn rates from histogram deltas, injected clock
//===----------------------------------------------------------------------===//

constexpr uint64_t SloSec = 1000000000ull; // 1s in the tracker's ns clock

SloConfig sloTestConfig() {
  SloConfig Cfg;
  Cfg.TargetUs = 1000;      // 1ms target
  Cfg.ObjectivePct = 90.0;  // error budget: 10% of checks may miss
  Cfg.FastWindowNs = 32 * SloSec;
  Cfg.SlowWindowNs = 320 * SloSec;
  return Cfg;
}

TEST(SloTrackerTest, BurnMatchesTheHandComputedRatio) {
  SloTracker T(sloTestConfig());
  LogHistogram H;

  // First tick seeds the ring; nothing recorded yet, nothing burns.
  SloTracker::Burn B0 = T.tick(1 * SloSec, H);
  EXPECT_EQ(B0.Fast.Total, 0u);
  EXPECT_EQ(B0.Fast.Burn, 0.0);
  EXPECT_EQ(B0.Slow.Burn, 0.0);

  // 8 fast checks + 2 misses = 20% bad against a 10% budget: burn 2x.
  for (int I = 0; I < 8; ++I)
    H.record(10);
  H.record(100000);
  H.record(100000);
  SloTracker::Burn B1 = T.tick(2 * SloSec, H);
  EXPECT_EQ(B1.Fast.Total, 10u);
  EXPECT_EQ(B1.Fast.Bad, 2u);
  EXPECT_NEAR(B1.Fast.Burn, 2.0, 1e-12);
  EXPECT_NEAR(B1.Slow.Burn, 2.0, 1e-12);
  EXPECT_EQ(B1.Fast.SpanNs, 1 * SloSec);
}

TEST(SloTrackerTest, AllGoodTrafficBurnsZero) {
  SloTracker T(sloTestConfig());
  LogHistogram H;
  T.tick(1 * SloSec, H);
  for (int I = 0; I < 100; ++I)
    H.record(50);
  SloTracker::Burn B = T.tick(2 * SloSec, H);
  EXPECT_EQ(B.Fast.Total, 100u);
  EXPECT_EQ(B.Fast.Bad, 0u);
  EXPECT_EQ(B.Fast.Burn, 0.0);
}

TEST(SloTrackerTest, QuietWindowDecaysToZero) {
  SloTracker T(sloTestConfig());
  LogHistogram H;
  T.tick(1 * SloSec, H);
  for (int I = 0; I < 4; ++I)
    H.record(500000); // all bad: burn 10x
  SloTracker::Burn Hot = T.tick(2 * SloSec, H);
  EXPECT_NEAR(Hot.Fast.Burn, 10.0, 1e-12);
  // Long idle stretch: the bad samples age out of both windows (the
  // snapshot at the window boundary already contains them, so the
  // delta is empty) and the burn returns to zero.
  SloTracker::Burn Quiet = T.tick(400 * SloSec, H);
  EXPECT_EQ(Quiet.Fast.Total, 0u);
  EXPECT_EQ(Quiet.Fast.Burn, 0.0);
  EXPECT_EQ(Quiet.Slow.Total, 0u);
  EXPECT_EQ(Quiet.Slow.Burn, 0.0);
}

TEST(SloTrackerTest, SubSpacingTicksStillComputeAgainstTheLastEntry) {
  // Ticks closer together than the ring spacing reuse the existing
  // boundary entry instead of growing the ring; the burn is computed
  // fresh each time from the live histogram.
  SloTracker T(sloTestConfig());
  LogHistogram H;
  T.tick(1 * SloSec, H);
  H.record(500000);
  // 200ms later: below the 1s minimum spacing, but the miss shows up.
  SloTracker::Burn B = T.tick(1 * SloSec + 200000000ull, H);
  EXPECT_EQ(B.Fast.Total, 1u);
  EXPECT_EQ(B.Fast.Bad, 1u);
  EXPECT_NEAR(B.Fast.Burn, 10.0, 1e-12);
}

//===----------------------------------------------------------------------===//
// Metrics hot-series routing
//===----------------------------------------------------------------------===//

TEST(MetricsHotSeriesTest, LatencySeriesUseBoundedHistograms) {
  // ".latency_us" series route into LogHistogram: summaries come back
  // with bucket precision, and exact-sample series are untouched.
  Metrics M;
  for (int I = 1; I <= 1000; ++I)
    M.observe("request.latency_us", double(I));
  M.observe("exact.series", 3.0);
  M.observe("exact.series", 5.0);

  MetricSummary Hot = M.summary("request.latency_us");
  EXPECT_EQ(Hot.Count, 1000u);
  EXPECT_GT(Hot.P50, 0.0);
  EXPECT_LE(Hot.P50, 500.0);
  EXPECT_GE(Hot.P50, 500.0 * (1.0 - 2.0 / 32.0));

  MetricSummary Exact = M.summary("exact.series");
  EXPECT_EQ(Exact.Count, 2u);
  EXPECT_EQ(Exact.Mean, 4.0);

  std::vector<std::string> Names = M.names();
  EXPECT_NE(std::find(Names.begin(), Names.end(),
                      std::string("request.latency_us")),
            Names.end());
  EXPECT_FALSE(M.empty());
  M.clear();
  EXPECT_TRUE(M.empty());
}

//===----------------------------------------------------------------------===//
// OpsRegistry
//===----------------------------------------------------------------------===//

TEST(OpsRegistryTest, InstrumentsRoundTripAndReferencesAreStable) {
  OpsRegistry R;
  OpsCounter &C = R.counter("seminal_requests_total", "requests");
  C.inc();
  C.inc(4);
  EXPECT_EQ(C.value(), 5u);
  // Re-asking with the same (name, labels) returns the same instrument.
  EXPECT_EQ(&R.counter("seminal_requests_total"), &C);

  OpsGauge &G = R.gauge("seminal_sessions", "live sessions");
  G.set(7);
  G.add(-2);
  EXPECT_EQ(G.value(), 5);
  EXPECT_EQ(&R.gauge("seminal_sessions"), &G);

  LogHistogram &H = R.histogram("seminal_latency_us", "latency");
  H.record(10);
  EXPECT_EQ(&R.histogram("seminal_latency_us"), &H);
  EXPECT_EQ(H.count(), 1u);
}

TEST(OpsRegistryTest, LabelsSelectInstancesWithinAFamily) {
  OpsRegistry R;
  OpsCounter &S0 = R.counter("seminal_shard_requests_total", "per shard",
                             {{"shard", "0"}});
  OpsCounter &S1 = R.counter("seminal_shard_requests_total", "per shard",
                             {{"shard", "1"}});
  EXPECT_NE(&S0, &S1);
  S0.inc(2);
  S1.inc(3);
  EXPECT_EQ(R.counter("seminal_shard_requests_total", "", {{"shard", "0"}})
                .value(),
            2u);
  std::string Text = R.renderPrometheus();
  EXPECT_NE(Text.find("seminal_shard_requests_total{shard=\"0\"} 2"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("seminal_shard_requests_total{shard=\"1\"} 3"),
            std::string::npos)
      << Text;
}

TEST(OpsRegistryTest, KindMismatchReturnsDetachedInstrument) {
  OpsRegistry R;
  OpsCounter &C = R.counter("seminal_thing", "a counter");
  C.inc(9);
  // Asking for the same name as a gauge is a programming error; the
  // returned instrument must be safe to use but render nowhere.
  OpsGauge &G = R.gauge("seminal_thing");
  G.set(123456);
  std::string Text = R.renderPrometheus();
  EXPECT_NE(Text.find("seminal_thing 9"), std::string::npos) << Text;
  EXPECT_EQ(Text.find("123456"), std::string::npos) << Text;
}

TEST(OpsRegistryTest, PrometheusExpositionIsWellFormed) {
  OpsRegistry R;
  R.counter("seminal_requests_total", "Requests accepted.").inc(3);
  R.gauge("seminal_queue_depth", "Queued requests.").set(2);
  LogHistogram &H =
      R.histogram("seminal_latency_us", "Latency.", {{"state", "cold"}});
  for (int I = 1; I <= 100; ++I)
    H.record(uint64_t(I));

  std::string Text = R.renderPrometheus();
  ASSERT_FALSE(Text.empty());
  EXPECT_EQ(Text.back(), '\n') << "exposition must end with a newline";

  std::istringstream Lines(Text);
  std::string Line;
  std::string LastTypedFamily;
  size_t Samples = 0;
  while (std::getline(Lines, Line)) {
    ASSERT_FALSE(Line.empty()) << "no blank lines in the exposition";
    if (Line.rfind("# HELP ", 0) == 0 || Line.rfind("# TYPE ", 0) == 0) {
      if (Line.rfind("# TYPE ", 0) == 0)
        LastTypedFamily = Line.substr(7, Line.find(' ', 7) - 7);
      continue;
    }
    ASSERT_NE(Line[0], '#') << "unknown comment form: " << Line;
    // <name>{labels}? <value>
    size_t NameEnd = Line.find_first_of("{ ");
    ASSERT_NE(NameEnd, std::string::npos) << Line;
    std::string Name = Line.substr(0, NameEnd);
    for (char Ch : Name)
      ASSERT_TRUE(std::isalnum(static_cast<unsigned char>(Ch)) || Ch == '_' ||
                  Ch == ':')
          << "bad metric name char in: " << Line;
    ASSERT_FALSE(std::isdigit(static_cast<unsigned char>(Name[0]))) << Line;
    // Every sample belongs to the family most recently declared by a
    // TYPE line (allowing _sum/_count suffixes on summaries).
    EXPECT_EQ(Name.rfind(LastTypedFamily, 0), 0u)
        << Name << " appeared under TYPE " << LastTypedFamily;
    // The value parses as a number.
    size_t ValStart = Line.rfind(' ');
    ASSERT_NE(ValStart, std::string::npos) << Line;
    EXPECT_NO_THROW((void)std::stod(Line.substr(ValStart + 1))) << Line;
    ++Samples;
  }
  EXPECT_GE(Samples, 8u) << Text; // 1 counter + 1 gauge + 4 quantiles + 2

  // The histogram renders as a summary: quantiles + _sum/_count.
  EXPECT_NE(Text.find("# TYPE seminal_latency_us summary"), std::string::npos);
  EXPECT_NE(Text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(Text.find("state=\"cold\""), std::string::npos);
  EXPECT_NE(Text.find("seminal_latency_us_count{state=\"cold\"} 100"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("seminal_latency_us_sum{state=\"cold\"} 5050"),
            std::string::npos)
      << Text;
}

TEST(OpsRegistryTest, LabelValuesAreEscaped) {
  OpsRegistry R;
  R.counter("seminal_odd_total", "", {{"path", "a\\b\"c\nd"}}).inc();
  std::string Text = R.renderPrometheus();
  EXPECT_NE(Text.find("path=\"a\\\\b\\\"c\\nd\""), std::string::npos) << Text;
}

TEST(OpsRegistryTest, NameSanitization) {
  EXPECT_EQ(promSanitizeName("seminal_ok_total"), "seminal_ok_total");
  EXPECT_EQ(promSanitizeName("has space-and.dots"), "has_space_and_dots");
  EXPECT_EQ(promSanitizeName("9starts_with_digit"), "_9starts_with_digit");
  EXPECT_EQ(promEscapeLabel("plain"), "plain");
  EXPECT_EQ(promEscapeLabel("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(OpsRegistryTest, JsonSnapshotParsesAndCarriesValues) {
  OpsRegistry R;
  R.counter("seminal_requests_total", "Requests.").inc(7);
  R.gauge("seminal_arena_bytes").set(4096);
  LogHistogram &H = R.histogram("seminal_latency_us", "", {{"state", "warm"}});
  for (int I = 0; I < 10; ++I)
    H.record(50);

  std::ostringstream OS;
  R.writeJson(OS);
  std::string Text = OS.str();
  EXPECT_EQ(Text.find('\n'), std::string::npos) << "compact single line";
  json::ParseResult P = json::parse(Text);
  ASSERT_TRUE(P.ok()) << Text;
  ASSERT_TRUE(P.Doc->isObject());

  const json::Value *Req = P.Doc->member("seminal_requests_total");
  ASSERT_TRUE(Req);
  EXPECT_EQ(Req->getString("type"), "counter");
  const json::Value *Vals = Req->member("values");
  ASSERT_TRUE(Vals && Vals->isArray());
  ASSERT_EQ(Vals->arrayValue().size(), 1u);
  EXPECT_EQ(Vals->arrayValue()[0].getInt("value", -1), 7);

  const json::Value *Lat = P.Doc->member("seminal_latency_us");
  ASSERT_TRUE(Lat);
  EXPECT_EQ(Lat->getString("type"), "histogram");
  const json::Value *LVals = Lat->member("values");
  ASSERT_TRUE(LVals && LVals->isArray());
  ASSERT_EQ(LVals->arrayValue().size(), 1u);
  const json::Value &Entry = LVals->arrayValue()[0];
  EXPECT_EQ(Entry.getInt("count", -1), 10);
  EXPECT_EQ(Entry.getInt("p50", -1), 50);
  const json::Value *Labels = Entry.member("labels");
  ASSERT_TRUE(Labels);
  EXPECT_EQ(Labels->getString("state"), "warm");
}

TEST(OpsRegistryTest, ProcessRegistryIsASingleton) {
  EXPECT_EQ(&OpsRegistry::process(), &OpsRegistry::process());
}

//===----------------------------------------------------------------------===//
// Logger
//===----------------------------------------------------------------------===//

TEST(LoggerTest, LevelGateDropsBelowThreshold) {
  std::ostringstream OS;
  Logger L(OS, LogLevel::Warn);
  EXPECT_FALSE(L.enabled(LogLevel::Debug));
  EXPECT_FALSE(L.enabled(LogLevel::Info));
  EXPECT_TRUE(L.enabled(LogLevel::Warn));
  EXPECT_TRUE(L.enabled(LogLevel::Error));
  L.info(LogEvent("dropped"));
  EXPECT_TRUE(OS.str().empty());
  L.warn(LogEvent("kept"));
  EXPECT_NE(OS.str().find("event=kept"), std::string::npos);

  std::ostringstream OS2;
  Logger Off(OS2, LogLevel::Off);
  EXPECT_FALSE(Off.enabled(LogLevel::Error));
  Off.error(LogEvent("nope"));
  EXPECT_TRUE(OS2.str().empty());
}

TEST(LoggerTest, LogfmtQuotesOnlyWhenNeeded) {
  std::ostringstream OS;
  Logger L(OS, LogLevel::Debug);
  L.info(LogEvent("check")
             .str("session", "alice")
             .str("path", "has space")
             .num("latency_us", int64_t(1234))
             .real("wall_ms", 1.5)
             .boolean("warm", true));
  std::string Line = OS.str();
  EXPECT_NE(Line.find("level=info"), std::string::npos) << Line;
  EXPECT_NE(Line.find("event=check"), std::string::npos) << Line;
  EXPECT_NE(Line.find("session=alice"), std::string::npos) << Line;
  EXPECT_NE(Line.find("path=\"has space\""), std::string::npos) << Line;
  EXPECT_NE(Line.find("latency_us=1234"), std::string::npos) << Line;
  EXPECT_NE(Line.find("warm=true"), std::string::npos) << Line;
  EXPECT_NE(Line.find("ts="), std::string::npos) << Line;
  EXPECT_EQ(Line.back(), '\n');
  EXPECT_EQ(std::count(Line.begin(), Line.end(), '\n'), 1);
}

TEST(LoggerTest, JsonModeEmitsParseableLines) {
  std::ostringstream OS;
  Logger L(OS, LogLevel::Debug, /*Json=*/true);
  L.warn(LogEvent("evict")
             .str("session", "bob \"quoted\"")
             .num("bytes", uint64_t(1u << 20))
             .boolean("forced", false));
  L.error(LogEvent("bind_failed").str("error", "address in use"));
  std::istringstream Lines(OS.str());
  std::string Line;
  int N = 0;
  while (std::getline(Lines, Line)) {
    json::ParseResult P = json::parse(Line);
    ASSERT_TRUE(P.ok()) << Line;
    ASSERT_TRUE(P.Doc->isObject());
    EXPECT_FALSE(P.Doc->getString("level").empty());
    EXPECT_FALSE(P.Doc->getString("event").empty());
    EXPECT_FALSE(P.Doc->getString("ts").empty());
    ++N;
  }
  EXPECT_EQ(N, 2);
  EXPECT_NE(OS.str().find("\"event\":\"evict\""), std::string::npos);
  EXPECT_NE(OS.str().find("\"forced\":false"), std::string::npos);
}

TEST(LoggerTest, ParseLogLevelRoundTrips) {
  LogLevel L = LogLevel::Warn;
  EXPECT_TRUE(parseLogLevel("debug", L));
  EXPECT_EQ(L, LogLevel::Debug);
  EXPECT_TRUE(parseLogLevel("info", L));
  EXPECT_EQ(L, LogLevel::Info);
  EXPECT_TRUE(parseLogLevel("off", L));
  EXPECT_EQ(L, LogLevel::Off);
  EXPECT_FALSE(parseLogLevel("verbose", L));
  EXPECT_EQ(L, LogLevel::Off) << "failed parse must not clobber";
  EXPECT_STREQ(logLevelName(LogLevel::Error), "error");
}

//===----------------------------------------------------------------------===//
// SlowTraceRing
//===----------------------------------------------------------------------===//

class SlowTraceRingTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = "/tmp/seminal_opstest_" + std::to_string(::getpid());
    cleanDir();
  }
  void TearDown() override { cleanDir(); }

  void cleanDir() {
    // Best-effort recursive-free cleanup: the ring only writes flat
    // files directly under Dir.
    std::string Cmd = "rm -rf '" + Dir + "'";
    (void)std::system(Cmd.c_str());
  }

  // TraceSink is non-copyable (it owns a mutex); fill one in place.
  static void fillSink(TraceSink &Sink) {
    TraceEvent E;
    E.Id = 1;
    E.Kind = SpanKind::Other;
    E.Name = "request";
    E.StartNs = 1000;
    E.DurNs = 5000000;
    Sink.record(E);
  }

  std::string Dir;
};

TEST_F(SlowTraceRingTest, CaptureWritesAValidChromeTrace) {
  SlowTraceRing Ring(Dir, 4);
  TraceSink Sink;
  fillSink(Sink);
  std::string Path = Ring.capture("42", Sink);
  ASSERT_FALSE(Path.empty());
  EXPECT_NE(Path.find("slow-000000-42.trace.json"), std::string::npos) << Path;
  EXPECT_EQ(Ring.size(), 1u);
  EXPECT_EQ(Ring.captured(), 1u);

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Buf;
  Buf << In.rdbuf();
  json::ParseResult P = json::parse(Buf.str());
  ASSERT_TRUE(P.ok()) << Buf.str();
  const json::Value *Events = P.Doc->member("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());
  EXPECT_FALSE(Events->arrayValue().empty());
}

TEST_F(SlowTraceRingTest, RingEvictsOldestBeyondCapacity) {
  SlowTraceRing Ring(Dir, 2);
  TraceSink Sink;
  fillSink(Sink);
  std::string P1 = Ring.capture("1", Sink);
  std::string P2 = Ring.capture("2", Sink);
  std::string P3 = Ring.capture("3", Sink);
  ASSERT_FALSE(P3.empty());
  EXPECT_EQ(Ring.size(), 2u);
  EXPECT_EQ(Ring.captured(), 3u);
  struct stat St;
  EXPECT_NE(::stat(P1.c_str(), &St), 0) << "oldest file must be evicted";
  EXPECT_EQ(::stat(P2.c_str(), &St), 0);
  EXPECT_EQ(::stat(P3.c_str(), &St), 0);
}

TEST_F(SlowTraceRingTest, RequestIdsAreSanitizedForTheFilesystem) {
  EXPECT_EQ(sanitizeRequestId("42"), "42");
  EXPECT_EQ(sanitizeRequestId("\"req-7.a\""), "req-7.a");
  EXPECT_EQ(sanitizeRequestId("a/b c"), "a_b_c");
  EXPECT_EQ(sanitizeRequestId(""), "req");
  EXPECT_EQ(sanitizeRequestId("\"//\""), "req");
  EXPECT_LE(sanitizeRequestId(std::string(200, 'x')).size(), 48u);

  SlowTraceRing Ring(Dir, 2);
  TraceSink Sink;
  fillSink(Sink);
  // Slashes in a hostile id become underscores: the capture cannot
  // escape the trace directory.
  std::string Path = Ring.capture("\"../../etc/passwd\"", Sink);
  ASSERT_FALSE(Path.empty());
  ASSERT_EQ(Path.rfind(Dir + "/slow-", 0), 0u) << Path;
  EXPECT_EQ(Path.find('/', Dir.size() + 1), std::string::npos) << Path;
}

} // namespace
