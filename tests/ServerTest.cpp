//===- ServerTest.cpp - Search-as-a-service daemon tests -------------------==//
//
// The server's contract (DESIGN.md section 13): suggestions served from
// a warm session are byte-identical to a cold one-shot runSeminal of
// the same source -- session retention only skips work, never changes
// answers -- and warm-reuse counters actually rise on an edit-resubmit.
// Also pins the protocol (malformed lines get an error reply, never a
// dropped connection), the stdio and Unix-socket transports, and the
// mid-stream-disconnect behavior (the session survives, only the reply
// is lost).
//
//===----------------------------------------------------------------------===//

#include "server/MetricsHttp.h"
#include "server/Protocol.h"
#include "server/Server.h"
#include "server/Session.h"

#include "core/Message.h"
#include "core/Seminal.h"
#include "obs/Log.h"
#include "obs/SlowTraceRing.h"
#include "support/Json.h"
#include "support/Profiler.h"
#include "support/Trace.h" // jsonEscape

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace seminal;
using namespace seminal::server;

namespace {

// A three-decl program whose error sits in the last decl, plus an
// edited variant that only touches that failing decl: the shape the
// editor loop produces, and the one session retention accelerates.
const char *BaseSource = "let inc x = x + 1\n"
                         "let twice f y = f (f y)\n"
                         "let out = twice inc true\n";
const char *EditedSource = "let inc x = x + 1\n"
                           "let twice f y = f (f y)\n"
                           "let out = twice inc false\n";

/// Renders a one-shot (cold, oracle-per-run) report the way Session
/// does, so the comparison is string equality end to end.
std::vector<std::string> oneShotMessages(const std::string &Source,
                                         std::string *Conventional) {
  SeminalOptions Opts;
  SeminalReport R = runSeminalOnSource(Source, Opts);
  EXPECT_FALSE(R.SyntaxError.has_value());
  EXPECT_FALSE(R.InputTypechecks);
  if (Conventional)
    *Conventional = R.conventionalMessage();
  std::vector<std::string> Out;
  for (const Suggestion &S : R.Suggestions)
    Out.push_back(renderSuggestion(S, Opts.Message));
  return Out;
}

std::vector<std::string> outcomeMessages(const CheckOutcome &O) {
  std::vector<std::string> Out;
  for (const auto &S : O.Suggestions)
    Out.push_back(S.Message);
  return Out;
}

uint64_t warmTotal(const AccelCounters &C) {
  return C.SessionPrefixHits + C.SessionVerdictReuses +
         C.SessionSeedAdoptions + C.SessionConvMemoHits;
}

json::Value parseReply(const std::string &Line) {
  json::ParseResult P = json::parse(Line);
  EXPECT_TRUE(P.ok()) << Line;
  EXPECT_TRUE(P.Doc->isObject()) << Line;
  return std::move(*P.Doc);
}

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(ServerProtocolTest, ParsesCheckRequest) {
  Request R = parseRequest("{\"method\":\"check\",\"id\":7,\"session\":\"s\","
                           "\"source\":\"let x = 1\",\"max_suggestions\":3,"
                           "\"report\":true}");
  EXPECT_EQ(R.TheMethod, Request::Method::Check);
  EXPECT_EQ(R.Id, "7");
  EXPECT_EQ(R.Session, "s");
  EXPECT_EQ(R.Source, "let x = 1");
  EXPECT_EQ(R.MaxSuggestions, 3u);
  EXPECT_TRUE(R.WantReport);
}

TEST(ServerProtocolTest, EchoesStringAndMissingIds) {
  EXPECT_EQ(parseRequest("{\"method\":\"ping\",\"id\":\"a-1\"}").Id,
            "\"a-1\"");
  EXPECT_EQ(parseRequest("{\"method\":\"ping\"}").Id, "null");
}

TEST(ServerProtocolTest, MalformedLinesComeBackAsInvalid) {
  EXPECT_EQ(parseRequest("not json").TheMethod, Request::Method::Invalid);
  EXPECT_EQ(parseRequest("[1,2]").TheMethod, Request::Method::Invalid);
  EXPECT_EQ(parseRequest("{\"id\":1}").TheMethod, Request::Method::Invalid);
  EXPECT_EQ(parseRequest("{\"method\":\"nope\"}").TheMethod,
            Request::Method::Invalid);
  // A check without a source is malformed but keeps its id for the
  // error reply.
  Request R = parseRequest("{\"method\":\"check\",\"id\":4}");
  EXPECT_EQ(R.TheMethod, Request::Method::Invalid);
  EXPECT_EQ(R.Id, "4");
  EXPECT_FALSE(R.Error.empty());
}

TEST(ServerProtocolTest, ProfileRequestsClampSecondsAndValidateFormat) {
  Request R = parseRequest("{\"method\":\"profile\",\"id\":1}");
  EXPECT_EQ(R.TheMethod, Request::Method::Profile);
  EXPECT_EQ(R.ProfileSeconds, 1u) << "default window is one second";
  // Seconds clamp into 1..30 instead of rejecting: an operator typo
  // must not turn a diagnostic request into an error.
  EXPECT_EQ(parseRequest("{\"method\":\"profile\",\"seconds\":999}")
                .ProfileSeconds,
            30u);
  EXPECT_EQ(parseRequest("{\"method\":\"profile\",\"seconds\":-5}")
                .ProfileSeconds,
            1u);
  EXPECT_EQ(parseRequest("{\"method\":\"profile\",\"seconds\":7}")
                .ProfileSeconds,
            7u);
  EXPECT_EQ(parseRequest("{\"method\":\"profile\",\"format\":\"json\"}")
                .Format,
            "json");
  // An unknown format is malformed, same rule as the metrics verb.
  EXPECT_EQ(parseRequest("{\"method\":\"profile\",\"format\":\"xml\"}")
                .TheMethod,
            Request::Method::Invalid);
}

//===----------------------------------------------------------------------===//
// Session: warm answers must equal cold answers
//===----------------------------------------------------------------------===//

TEST(ServerSessionTest, ColdCheckMatchesOneShot) {
  std::string Conventional;
  std::vector<std::string> Expected =
      oneShotMessages(BaseSource, &Conventional);

  Session S("t", SessionConfig());
  CheckOutcome Out = S.check(BaseSource, CheckOptions());
  EXPECT_TRUE(Out.SyntaxError.empty());
  EXPECT_FALSE(Out.InputTypechecks);
  EXPECT_EQ(Out.Conventional, Conventional);
  EXPECT_EQ(outcomeMessages(Out), Expected);
  EXPECT_EQ(warmTotal(Out.Accel), 0u) << "first request cannot be warm";
}

TEST(ServerSessionTest, WarmResubmitIsByteIdenticalAndCounted) {
  Session S("t", SessionConfig());
  CheckOutcome Cold = S.check(BaseSource, CheckOptions());
  ASSERT_FALSE(Cold.Suggestions.empty());

  // Edit only the failing decl and resubmit: the session must reuse the
  // prefix it proved last time and still answer exactly like a cold
  // one-shot run of the edited program.
  std::string Conventional;
  std::vector<std::string> Expected =
      oneShotMessages(EditedSource, &Conventional);
  CheckOutcome Warm = S.check(EditedSource, CheckOptions());
  EXPECT_EQ(Warm.Conventional, Conventional);
  EXPECT_EQ(outcomeMessages(Warm), Expected);
  EXPECT_GT(Warm.Accel.SessionPrefixHits, 0u);
  EXPECT_GT(Warm.Accel.SessionSeedAdoptions, 0u);
  EXPECT_GT(Warm.Accel.SessionVerdictReuses, 0u);
  EXPECT_LT(Warm.InferenceRuns, Cold.InferenceRuns)
      << "the warm resubmit must do strictly less inference";

  // An identical resubmit additionally replays the conventional error
  // from the cross-request memo.
  CheckOutcome Replay = S.check(EditedSource, CheckOptions());
  EXPECT_GT(Replay.Accel.SessionConvMemoHits, 0u);
  EXPECT_EQ(Replay.Conventional, Conventional);
  EXPECT_EQ(outcomeMessages(Replay), Expected);
}

TEST(ServerSessionTest, CountersAreScopedPerRequest) {
  Session S("t", SessionConfig());
  CheckOutcome First = S.check(BaseSource, CheckOptions());
  CheckOutcome Second = S.check(EditedSource, CheckOptions());
  // Per-request scoping: the second outcome's counters describe only
  // the second request (no bleed from the first), while the session
  // rollup accumulates both.
  EXPECT_EQ(S.totalInferenceRuns(), First.InferenceRuns + Second.InferenceRuns);
  EXPECT_EQ(S.totalOracleCalls(), First.OracleCalls + Second.OracleCalls);
  EXPECT_EQ(S.accumulated().SessionPrefixHits,
            First.Accel.SessionPrefixHits + Second.Accel.SessionPrefixHits);
}

TEST(ServerSessionTest, SyntaxErrorLeavesWarmStateIntact) {
  Session S("t", SessionConfig());
  S.check(BaseSource, CheckOptions());
  CheckOutcome Bad = S.check("let x = ", CheckOptions());
  EXPECT_FALSE(Bad.SyntaxError.empty());
  CheckOutcome Warm = S.check(EditedSource, CheckOptions());
  EXPECT_GT(warmTotal(Warm.Accel), 0u)
      << "a syntax error in between must not cool the session";
}

TEST(ServerSessionTest, ResetDropsWarmState) {
  Session S("t", SessionConfig());
  S.check(BaseSource, CheckOptions());
  S.reset();
  CheckOutcome Out = S.check(EditedSource, CheckOptions());
  EXPECT_EQ(warmTotal(Out.Accel), 0u);
}

TEST(ServerSessionTest, EvictionGoesColdButStaysCorrect) {
  SessionConfig Config;
  Config.ArenaEvictBytes = 1; // every request crosses the watermark
  Session S("t", Config);
  CheckOutcome First = S.check(BaseSource, CheckOptions());
  EXPECT_TRUE(First.Evicted);
  std::vector<std::string> Expected = oneShotMessages(EditedSource, nullptr);
  CheckOutcome Second = S.check(EditedSource, CheckOptions());
  EXPECT_EQ(warmTotal(Second.Accel), 0u) << "evicted sessions run cold";
  EXPECT_EQ(outcomeMessages(Second), Expected);
  EXPECT_EQ(S.evictions(), 2u);
}

//===----------------------------------------------------------------------===//
// Engine: routing, stats, malformed input
//===----------------------------------------------------------------------===//

TEST(ServerEngineTest, ChecksMatchOneShotThroughTheWire) {
  std::string Conventional;
  std::vector<std::string> Expected =
      oneShotMessages(BaseSource, &Conventional);

  ServerEngine Engine;
  std::string Line = "{\"method\":\"check\",\"id\":1,\"session\":\"e\","
                     "\"source\":\"";
  Line += jsonEscape(BaseSource);
  Line += "\"}";
  json::Value Reply = parseReply(Engine.handle(Line));
  EXPECT_TRUE(Reply.getBool("ok", false));
  EXPECT_EQ(Reply.getString("conventional"), Conventional);
  const json::Value *Suggestions = Reply.member("suggestions");
  ASSERT_TRUE(Suggestions && Suggestions->isArray());
  ASSERT_EQ(Suggestions->arrayValue().size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(Suggestions->arrayValue()[I].getString("message"), Expected[I]);
}

TEST(ServerEngineTest, WarmCountersRiseInResponses) {
  ServerEngine Engine;
  auto CheckLine = [](const char *Source) {
    std::string Line = "{\"method\":\"check\",\"id\":1,\"session\":\"w\","
                       "\"source\":\"";
    Line += jsonEscape(Source);
    Line += "\"}";
    return Line;
  };
  json::Value Cold = parseReply(Engine.handle(CheckLine(BaseSource)));
  const json::Value *ColdWarm = Cold.member("warm");
  ASSERT_TRUE(ColdWarm);
  EXPECT_EQ(ColdWarm->getInt("prefix_hits", -1), 0);

  json::Value Warm = parseReply(Engine.handle(CheckLine(EditedSource)));
  const json::Value *W = Warm.member("warm");
  ASSERT_TRUE(W);
  EXPECT_GT(W->getInt("prefix_hits", 0), 0);
  EXPECT_GT(W->getInt("seed_adoptions", 0), 0);
  EXPECT_GT(W->getInt("verdict_reuses", 0), 0);

  // The server-wide rollup accumulated both requests' counters.
  ServerStats Stats = Engine.stats();
  EXPECT_EQ(Stats.Checks, 2u);
  EXPECT_GT(Stats.Accel.SessionPrefixHits, 0u);
}

TEST(ServerEngineTest, MalformedLineGetsErrorReplyAndSessionSurvives) {
  ServerEngine Engine;
  std::string Line = "{\"method\":\"check\",\"id\":1,\"session\":\"m\","
                     "\"source\":\"";
  Line += jsonEscape(BaseSource);
  Line += "\"}";
  Engine.handle(Line);

  json::Value Err = parseReply(Engine.handle("{\"oops\""));
  EXPECT_FALSE(Err.getBool("ok", true));
  EXPECT_FALSE(Err.getString("error").empty());
  json::Value Err2 = parseReply(
      Engine.handle("{\"method\":\"frobnicate\",\"id\":2}"));
  EXPECT_FALSE(Err2.getBool("ok", true));

  std::string Edited = "{\"method\":\"check\",\"id\":3,\"session\":\"m\","
                       "\"source\":\"";
  Edited += jsonEscape(EditedSource);
  Edited += "\"}";
  json::Value Warm = parseReply(Engine.handle(Edited));
  ASSERT_TRUE(Warm.member("warm"));
  EXPECT_GT(Warm.member("warm")->getInt("prefix_hits", 0), 0)
      << "malformed lines in between must not disturb the session";
  EXPECT_EQ(Engine.stats().Malformed, 2u);
}

TEST(ServerEngineTest, SessionsShardDeterministically) {
  ServerEngine Engine;
  EXPECT_EQ(Engine.shardOf("alpha"), Engine.shardOf("alpha"));
  EXPECT_LT(Engine.shardOf("alpha"), Engine.shards());
}

TEST(ServerEngineTest, PingStatsAndShutdown) {
  ServerEngine Engine;
  json::Value Pong = parseReply(Engine.handle("{\"method\":\"ping\",\"id\":1}"));
  EXPECT_TRUE(Pong.getBool("pong", false));
  json::Value Stats = parseReply(
      Engine.handle("{\"method\":\"stats\",\"id\":2}"));
  EXPECT_EQ(Stats.getInt("pings", -1), 1);
  EXPECT_FALSE(Engine.shutdownRequested());
  Engine.handle("{\"method\":\"shutdown\",\"id\":3}");
  EXPECT_TRUE(Engine.shutdownRequested());
}

//===----------------------------------------------------------------------===//
// Transports
//===----------------------------------------------------------------------===//

TEST(ServerStdioTest, ServesJsonlStreams) {
  ServerEngine Engine;
  std::string Input = "{\"method\":\"ping\",\"id\":1}\n"
                      "this is not json\n"
                      "{\"method\":\"check\",\"id\":2,\"source\":\"";
  Input += jsonEscape(BaseSource);
  Input += "\"}\n";
  std::istringstream In(Input);
  std::ostringstream Out;
  serveStdio(Engine, In, Out);

  std::istringstream Lines(Out.str());
  std::string Line;
  size_t Replies = 0;
  bool SawError = false, SawCheck = false;
  while (std::getline(Lines, Line)) {
    ++Replies;
    json::Value Reply = parseReply(Line);
    if (!Reply.getBool("ok", true))
      SawError = true;
    if (Reply.member("suggestions"))
      SawCheck = true;
  }
  EXPECT_EQ(Replies, 3u) << "every line gets exactly one reply";
  EXPECT_TRUE(SawError);
  EXPECT_TRUE(SawCheck);
}

class SocketClient {
public:
  explicit SocketClient(const std::string &Path) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s", Path.c_str());
    Connected = Fd >= 0 && ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                                     sizeof(Addr)) == 0;
  }
  ~SocketClient() { close(); }

  bool send(const std::string &Line) {
    std::string Out = Line + "\n";
    size_t Off = 0;
    while (Off < Out.size()) {
      ssize_t N = ::send(Fd, Out.data() + Off, Out.size() - Off, 0);
      if (N <= 0)
        return false;
      Off += size_t(N);
    }
    return true;
  }

  std::string recvLine() {
    std::string Buf;
    char C;
    while (::recv(Fd, &C, 1, 0) == 1) {
      if (C == '\n')
        return Buf;
      Buf.push_back(C);
    }
    return Buf;
  }

  void close() {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
  }

  bool Connected = false;

private:
  int Fd = -1;
};

TEST(ServerSocketTest, MidStreamDisconnectLeavesSessionIntact) {
  std::string Path =
      "/tmp/seminal_servertest_" + std::to_string(::getpid()) + ".sock";
  ServerEngine Engine;
  UnixSocketServer Socket(Engine, Path);
  std::string Error;
  ASSERT_TRUE(Socket.start(Error)) << Error;

  std::string CheckBase = "{\"method\":\"check\",\"id\":1,"
                          "\"session\":\"d\",\"source\":\"";
  CheckBase += jsonEscape(BaseSource);
  CheckBase += "\"}";

  // Client 1 submits a check and vanishes without reading the reply.
  {
    SocketClient C1(Path);
    ASSERT_TRUE(C1.Connected);
    ASSERT_TRUE(C1.send(CheckBase));
    C1.close();
  }
  Engine.drain();

  // Client 2 reconnects to the same session: the work client 1 paid for
  // is still warm, and the server is still serving.
  SocketClient C2(Path);
  ASSERT_TRUE(C2.Connected);
  std::string Edited = "{\"method\":\"check\",\"id\":2,\"session\":\"d\","
                       "\"source\":\"";
  Edited += jsonEscape(EditedSource);
  Edited += "\"}";
  ASSERT_TRUE(C2.send(Edited));
  json::Value Reply = parseReply(C2.recvLine());
  EXPECT_TRUE(Reply.getBool("ok", false));
  ASSERT_TRUE(Reply.member("warm"));
  EXPECT_GT(Reply.member("warm")->getInt("prefix_hits", 0), 0)
      << "the disconnected client's warm state must survive";
  C2.close();

  Socket.stop();
  EXPECT_EQ(Engine.stats().Checks, 2u);
}

TEST(ServerSocketTest, SecondDaemonOnSameSocketFailsCleanly) {
  std::string Path =
      "/tmp/seminal_sockclash_" + std::to_string(::getpid()) + ".sock";
  ServerEngine EngineA;
  UnixSocketServer A(EngineA, Path);
  std::string Error;
  ASSERT_TRUE(A.start(Error)) << Error;

  // A second daemon must refuse the live socket instead of stealing it.
  ServerEngine EngineB;
  UnixSocketServer B(EngineB, Path);
  std::string ErrorB;
  EXPECT_FALSE(B.start(ErrorB));
  EXPECT_NE(ErrorB.find("already in use"), std::string::npos) << ErrorB;
  EXPECT_NE(ErrorB.find(Path), std::string::npos)
      << "the error must name the contested path: " << ErrorB;

  // The refusal left daemon A fully operational.
  SocketClient C(Path);
  ASSERT_TRUE(C.Connected);
  ASSERT_TRUE(C.send("{\"method\":\"ping\",\"id\":1}"));
  EXPECT_TRUE(parseReply(C.recvLine()).getBool("pong", false));
  C.close();
  A.stop();

  // A *stale* file (owner died without cleanup) is safe to replace: the
  // probe connect fails, so the next daemon unlinks and binds.
  int Stale = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Stale, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::snprintf(Addr.sun_path, sizeof(Addr.sun_path), "%s", Path.c_str());
  ASSERT_EQ(::bind(Stale, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);
  ::close(Stale); // No unlink: the file lingers with nobody listening.
  ServerEngine EngineC;
  UnixSocketServer Recovered(EngineC, Path);
  std::string ErrorC;
  EXPECT_TRUE(Recovered.start(ErrorC)) << ErrorC;
  Recovered.stop();
  ::unlink(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Observability: metrics verb, per-shard stats, slow traces, HTTP scrape
//===----------------------------------------------------------------------===//

std::string checkLine(int Id, const char *SessionName, const char *Source) {
  std::string Line = "{\"method\":\"check\",\"id\":" + std::to_string(Id) +
                     ",\"session\":\"" + SessionName + "\",\"source\":\"";
  Line += jsonEscape(Source);
  Line += "\"}";
  return Line;
}

TEST(ServerObsTest, MetricsReconcileExactlyWithStats) {
  ServerOptions Opts;
  Opts.Threads = 2;
  ServerEngine Engine(Opts);
  Engine.handle(checkLine(1, "alpha", BaseSource));
  Engine.handle(checkLine(2, "alpha", EditedSource)); // warm
  Engine.handle(checkLine(3, "beta", BaseSource));
  Engine.handle("{\"method\":\"ping\",\"id\":4}");
  Engine.handle("{\"method\":\"reset\",\"id\":5,\"session\":\"beta\"}");
  Engine.drain();

  // The stats rollup and the registry are updated at the same code
  // sites; every shared total must agree exactly.
  ServerStats S = Engine.stats();
  obs::OpsRegistry &R = Engine.registry();
  EXPECT_EQ(S.Checks, 3u);
  EXPECT_EQ(R.counter("seminal_requests_total").value(), S.Requests);
  EXPECT_EQ(R.counter("seminal_checks_total").value(), S.Checks);
  EXPECT_EQ(R.counter("seminal_resets_total").value(), S.Resets);
  EXPECT_EQ(R.counter("seminal_pings_total").value(), S.Pings);
  EXPECT_EQ(R.counter("seminal_oracle_calls_total").value(), S.OracleCalls);
  EXPECT_EQ(R.counter("seminal_inference_runs_total").value(),
            S.InferenceRuns);
  EXPECT_EQ(R.counter("seminal_sessions_created_total").value(),
            S.SessionsCreated);
  EXPECT_EQ(R.counter("seminal_evictions_total").value(), S.Evictions);
  uint64_t Warm = S.Accel.SessionPrefixHits + S.Accel.SessionVerdictReuses +
                  S.Accel.SessionSeedAdoptions + S.Accel.SessionConvMemoHits;
  EXPECT_EQ(R.counter("seminal_warm_hits_total").value(), Warm);
  EXPECT_GT(Warm, 0u) << "the alpha resubmit must have run warm";

  // Every check records into exactly one latency series.
  LogHistogram &Cold =
      R.histogram("seminal_request_latency_us", "", {{"state", "cold"}});
  LogHistogram &WarmH =
      R.histogram("seminal_request_latency_us", "", {{"state", "warm"}});
  EXPECT_EQ(Cold.count() + WarmH.count(), S.Checks);
  EXPECT_EQ(Cold.count(), 2u);
  EXPECT_EQ(WarmH.count(), 1u);
  EXPECT_EQ(R.histogram("seminal_oracle_calls_per_request").count(),
            S.Checks);

  // The per-shard breakdown covers every routed request and is idle
  // after a drain.
  ASSERT_EQ(S.Shards.size(), size_t(Engine.shards()));
  uint64_t ShardRequests = 0;
  for (const ServerStats::ShardStats &Sh : S.Shards) {
    ShardRequests += Sh.Requests;
    EXPECT_EQ(Sh.QueueDepth, 0) << "drained engine must have empty queues";
    EXPECT_GE(Sh.BusySeconds, 0.0);
  }
  EXPECT_EQ(ShardRequests, S.Checks + S.Resets);
}

TEST(ServerObsTest, MetricsVerbServesJsonAndPrometheus) {
  ServerEngine Engine;
  Engine.handle(checkLine(1, "m", BaseSource));

  json::Value Reply =
      parseReply(Engine.handle("{\"method\":\"metrics\",\"id\":2}"));
  EXPECT_TRUE(Reply.getBool("ok", false));
  const json::Value *Metrics = Reply.member("metrics");
  ASSERT_TRUE(Metrics && Metrics->isObject());
  const json::Value *Checks = Metrics->member("seminal_checks_total");
  ASSERT_TRUE(Checks);
  const json::Value *Vals = Checks->member("values");
  ASSERT_TRUE(Vals && Vals->isArray());
  ASSERT_EQ(Vals->arrayValue().size(), 1u);
  EXPECT_EQ(Vals->arrayValue()[0].getInt("value", -1), 1);

  json::Value Prom = parseReply(Engine.handle(
      "{\"method\":\"metrics\",\"id\":3,\"format\":\"prometheus\"}"));
  EXPECT_EQ(Prom.getString("format"), "prometheus");
  std::string Text = Prom.getString("exposition");
  EXPECT_NE(Text.find("# TYPE seminal_checks_total counter"),
            std::string::npos);
  EXPECT_NE(Text.find("seminal_checks_total 1"), std::string::npos);
  EXPECT_NE(
      Text.find("# TYPE seminal_request_latency_us summary"),
      std::string::npos);

  // An unknown format is malformed, not silently defaulted.
  json::Value Bad = parseReply(Engine.handle(
      "{\"method\":\"metrics\",\"id\":4,\"format\":\"xml\"}"));
  EXPECT_FALSE(Bad.getBool("ok", true));
}

TEST(ServerObsTest, StatsVerbCarriesShardArray) {
  ServerOptions Opts;
  Opts.Threads = 3;
  ServerEngine Engine(Opts);
  Engine.handle(checkLine(1, "s", BaseSource));
  json::Value Stats =
      parseReply(Engine.handle("{\"method\":\"stats\",\"id\":2}"));
  EXPECT_EQ(Stats.getInt("shard_count", -1), 3);
  const json::Value *Shards = Stats.member("shards");
  ASSERT_TRUE(Shards && Shards->isArray());
  ASSERT_EQ(Shards->arrayValue().size(), 3u);
  uint64_t Total = 0;
  for (size_t I = 0; I < 3; ++I) {
    const json::Value &Sh = Shards->arrayValue()[I];
    EXPECT_EQ(Sh.getInt("shard", -1), int64_t(I));
    Total += uint64_t(Sh.getInt("requests", 0));
    EXPECT_TRUE(Sh.member("queue_depth"));
    EXPECT_TRUE(Sh.member("busy_seconds"));
  }
  EXPECT_EQ(Total, 1u);
}

TEST(ServerObsTest, SlowRequestsExportBoundedTraces) {
  std::string Dir =
      "/tmp/seminal_slowtrace_srv_" + std::to_string(::getpid());
  std::string Cmd = "rm -rf '" + Dir + "'";
  (void)std::system(Cmd.c_str());

  obs::SlowTraceRing Ring(Dir, 2);
  ServerOptions Opts;
  Opts.SlowTraces = &Ring;
  Opts.TraceSlowMs = 0.0; // Tail-sample everything: every check is "slow".
  ServerEngine Engine(Opts);

  json::Value Reply = parseReply(Engine.handle(checkLine(7, "t", BaseSource)));
  std::string Path = Reply.getString("slow_trace");
  ASSERT_FALSE(Path.empty()) << "threshold 0 must capture every request";
  EXPECT_NE(Path.find("-7.trace.json"), std::string::npos)
      << "the file is named after the request id: " << Path;
  EXPECT_EQ(Engine.registry().counter("seminal_slow_traces_total").value(),
            1u);

  // The exported file is a loadable Chrome trace with real spans.
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << Path;
  std::stringstream Buf;
  Buf << In.rdbuf();
  json::ParseResult P = json::parse(Buf.str());
  ASSERT_TRUE(P.ok());
  const json::Value *Events = P.Doc->member("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());
  EXPECT_FALSE(Events->arrayValue().empty());

  // The ring caps disk: three more captures, never more than two files.
  Engine.handle(checkLine(8, "t", EditedSource));
  Engine.handle(checkLine(9, "t", EditedSource));
  Engine.handle(checkLine(10, "t", BaseSource));
  EXPECT_EQ(Ring.captured(), 4u);
  EXPECT_EQ(Ring.size(), 2u);

  (void)std::system(Cmd.c_str());
}

TEST(ServerObsTest, StructuredLogsFollowTheRequestStream) {
  std::ostringstream LogOut;
  obs::Logger Log(LogOut, obs::LogLevel::Info);
  ServerOptions Opts;
  Opts.Log = &Log;
  ServerEngine Engine(Opts);
  Engine.handle(checkLine(1, "alice", BaseSource));
  Engine.handle("{\"method\":\"ping\",\"id\":2}"); // debug: suppressed at info
  Engine.handle("{not json");

  std::string Text = LogOut.str();
  EXPECT_NE(Text.find("event=check"), std::string::npos) << Text;
  EXPECT_NE(Text.find("session=alice"), std::string::npos) << Text;
  EXPECT_NE(Text.find("latency_ms="), std::string::npos) << Text;
  EXPECT_NE(Text.find("event=malformed"), std::string::npos) << Text;
  EXPECT_EQ(Text.find("event=ping"), std::string::npos)
      << "debug events must not leak through an info logger: " << Text;
}

/// Minimal HTTP/1.0 GET against 127.0.0.1:port; returns the full
/// response (status line + headers + body).
std::string httpGet(uint16_t Port, const std::string &Target,
                    const char *Verb = "GET") {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return "";
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return "";
  }
  std::string Req = std::string(Verb) + " " + Target + " HTTP/1.0\r\n\r\n";
  (void)!::send(Fd, Req.data(), Req.size(), 0);
  std::string Out;
  char Buf[4096];
  ssize_t N;
  while ((N = ::recv(Fd, Buf, sizeof(Buf), 0)) > 0)
    Out.append(Buf, size_t(N));
  ::close(Fd);
  return Out;
}

TEST(ServerObsTest, HttpEndpointServesMetricsAndHealth) {
  ServerEngine Engine;
  Engine.handle(checkLine(1, "h", BaseSource));

  MetricsHttpServer Http(Engine, 0); // 0: ephemeral port
  std::string Error;
  ASSERT_TRUE(Http.start(Error)) << Error;
  ASSERT_NE(Http.port(), 0u);

  std::string Metrics = httpGet(Http.port(), "/metrics");
  EXPECT_NE(Metrics.find("200 OK"), std::string::npos) << Metrics;
  EXPECT_NE(Metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(Metrics.find("seminal_checks_total 1"), std::string::npos);

  std::string MetricsJson = httpGet(Http.port(), "/metrics.json");
  EXPECT_NE(MetricsJson.find("200 OK"), std::string::npos);
  size_t BodyAt = MetricsJson.find("\r\n\r\n");
  ASSERT_NE(BodyAt, std::string::npos);
  json::ParseResult P = json::parse(MetricsJson.substr(BodyAt + 4));
  ASSERT_TRUE(P.ok());
  EXPECT_TRUE(P.Doc->member("seminal_checks_total"));

  std::string Health = httpGet(Http.port(), "/healthz");
  EXPECT_NE(Health.find("200 OK"), std::string::npos);
  EXPECT_NE(Health.find("{\"ok\":true}"), std::string::npos);

  EXPECT_NE(httpGet(Http.port(), "/nope").find("404"), std::string::npos);
  EXPECT_NE(httpGet(Http.port(), "/metrics", "POST").find("405"),
            std::string::npos);

  // The scrape and the stats verb agree: same registry, same totals.
  json::Value Stats =
      parseReply(Engine.handle("{\"method\":\"stats\",\"id\":2}"));
  std::string Scrape = httpGet(Http.port(), "/metrics");
  std::string Needle = "seminal_checks_total " +
                       std::to_string(Stats.getInt("checks", -1));
  EXPECT_NE(Scrape.find(Needle), std::string::npos) << Scrape;
  Http.stop();
}

//===----------------------------------------------------------------------===//
// Cost ledger: response == stats == scrape, by construction
//===----------------------------------------------------------------------===//

/// Reads the per-request "cost" object out of a check reply into a
/// RequestCost (asserting the object and every field are present).
RequestCost costOf(const json::Value &Reply) {
  RequestCost C;
  const json::Value *Cost = Reply.member("cost");
  EXPECT_TRUE(Cost && Cost->isObject());
  if (!Cost || !Cost->isObject())
    return C;
  C.CpuNs = uint64_t(Cost->getInt("cpu_ns", -1));
  C.WallNs = uint64_t(Cost->getInt("wall_ns", -1));
  C.OracleCalls = uint64_t(Cost->getInt("oracle_calls", -1));
  C.InferenceRuns = uint64_t(Cost->getInt("inference_runs", -1));
  C.ArenaNodes = uint64_t(Cost->getInt("arena_nodes", -1));
  C.ArenaBytes = uint64_t(Cost->getInt("arena_bytes", -1));
  C.VerdictCacheHits = uint64_t(Cost->getInt("verdict_cache_hits", -1));
  return C;
}

TEST(ServerLedgerTest, SessionStampsTheLedgerFromTheRunItself) {
  // One measurement site: the ledger fields must equal the run's own
  // counters, not a parallel tally that could drift.
  Session S("t", SessionConfig());
  CheckOutcome Out = S.check(BaseSource, CheckOptions());
  EXPECT_EQ(Out.Cost.OracleCalls, uint64_t(Out.OracleCalls));
  EXPECT_EQ(Out.Cost.InferenceRuns, uint64_t(Out.InferenceRuns));
  EXPECT_EQ(Out.Cost.ArenaNodes, Out.Accel.ArenaNodes);
  EXPECT_EQ(Out.Cost.ArenaBytes, Out.Accel.ArenaBytes);
  EXPECT_EQ(Out.Cost.VerdictCacheHits, Out.Accel.CacheHits);
  EXPECT_GT(Out.Cost.CpuNs, 0u) << "a real check must consume CPU";
  EXPECT_GT(Out.Cost.WallNs, 0u);

  // The session rollup sums the flows across requests.
  CheckOutcome Out2 = S.check(EditedSource, CheckOptions());
  EXPECT_EQ(S.accumulatedCost().CpuNs, Out.Cost.CpuNs + Out2.Cost.CpuNs);
  EXPECT_EQ(S.accumulatedCost().OracleCalls,
            Out.Cost.OracleCalls + Out2.Cost.OracleCalls);
  EXPECT_EQ(S.accumulatedCost().InferenceRuns,
            Out.Cost.InferenceRuns + Out2.Cost.InferenceRuns);
}

TEST(ServerLedgerTest, ResponsesStatsAndScrapeReconcile) {
  ServerOptions Opts;
  Opts.Threads = 2;
  ServerEngine Engine(Opts);
  constexpr uint64_t Checks = 6;
  RequestCost Sum;
  for (int I = 1; I <= int(Checks); ++I) {
    const char *Src = (I % 2) ? BaseSource : EditedSource;
    const char *Sess = (I <= 3) ? "ledger_a" : "ledger_b";
    json::Value Reply = parseReply(Engine.handle(checkLine(I, Sess, Src)));
    RequestCost C = costOf(Reply);
    EXPECT_GT(C.CpuNs, 0u);
    EXPECT_GT(C.WallNs, 0u);
    EXPECT_GT(C.OracleCalls, 0u);
    Sum.CpuNs += C.CpuNs;
    Sum.WallNs += C.WallNs;
    Sum.OracleCalls += C.OracleCalls;
    Sum.InferenceRuns += C.InferenceRuns;
    Sum.VerdictCacheHits += C.VerdictCacheHits;
  }
  Engine.drain();

  // The stats verb's rollup is the sum of the per-response ledgers --
  // same numbers flow to both sinks from the one measurement site.
  json::Value Stats =
      parseReply(Engine.handle("{\"method\":\"stats\",\"id\":99}"));
  const json::Value *SC = Stats.member("cost");
  ASSERT_TRUE(SC && SC->isObject());
  EXPECT_EQ(uint64_t(SC->getInt("cpu_ns", -1)), Sum.CpuNs);
  EXPECT_EQ(uint64_t(SC->getInt("wall_ns", -1)), Sum.WallNs);
  EXPECT_EQ(uint64_t(SC->getInt("oracle_calls", -1)), Sum.OracleCalls);
  EXPECT_EQ(uint64_t(SC->getInt("inference_runs", -1)), Sum.InferenceRuns);
  EXPECT_EQ(uint64_t(SC->getInt("verdict_cache_hits", -1)),
            Sum.VerdictCacheHits);

  // Scrape counters count microseconds, floored per request: they sit
  // within `Checks` microseconds of the exact nanosecond sums.
  obs::OpsRegistry &R = Engine.registry();
  uint64_t CpuUs = R.counter("seminal_cost_cpu_us_total").value();
  EXPECT_LE(CpuUs, Sum.CpuNs / 1000);
  EXPECT_GE(CpuUs + Checks, Sum.CpuNs / 1000);
  uint64_t WallUs = R.counter("seminal_cost_wall_us_total").value();
  EXPECT_LE(WallUs, Sum.WallNs / 1000);
  EXPECT_GE(WallUs + Checks, Sum.WallNs / 1000);
  // Discrete flows carry no rounding: they reconcile exactly.
  EXPECT_EQ(R.counter("seminal_cost_oracle_calls_total").value(),
            Sum.OracleCalls);
  EXPECT_EQ(R.counter("seminal_cost_inference_runs_total").value(),
            Sum.InferenceRuns);
  EXPECT_EQ(R.counter("seminal_cost_verdict_cache_hits_total").value(),
            Sum.VerdictCacheHits);

  // Every check lands one sample in the per-request CPU histogram, and
  // the per-shard CPU split covers the whole total.
  EXPECT_EQ(R.histogram("seminal_request_cpu_us").count(), Checks);
  uint64_t ShardCpuUs = 0;
  for (unsigned I = 0; I < Engine.shards(); ++I)
    ShardCpuUs += R.counter("seminal_shard_cpu_us_total", "",
                            {{"shard", std::to_string(I)}})
                      .value();
  EXPECT_EQ(ShardCpuUs, CpuUs);

  // Sessions are pinned to one shard worker, so each request's CPU
  // delta is real thread time: the process clock upper-bounds the sum.
  EXPECT_LE(Sum.CpuNs, prof::processCpuNs());
}

TEST(ServerLedgerTest, RunReportEmbedsTheSameLedger) {
  // report:true responses carry a RunReport whose "cost" object is the
  // same ledger the response itself reports -- one source of truth.
  ServerEngine Engine;
  std::string Line = "{\"method\":\"check\",\"id\":1,\"session\":\"r\","
                     "\"report\":true,\"source\":\"";
  Line += jsonEscape(BaseSource);
  Line += "\"}";
  json::Value Reply = parseReply(Engine.handle(Line));
  RequestCost Outer = costOf(Reply);
  const json::Value *Report = Reply.member("report");
  ASSERT_TRUE(Report && Report->isObject());
  const json::Value *Effort = Report->member("effort");
  ASSERT_TRUE(Effort && Effort->isObject());
  const json::Value *RC = Effort->member("cost");
  ASSERT_TRUE(RC && RC->isObject()) << "schema v2 makes the cost mandatory";
  EXPECT_EQ(uint64_t(RC->getInt("cpu_ns", -1)), Outer.CpuNs);
  EXPECT_EQ(uint64_t(RC->getInt("wall_ns", -1)), Outer.WallNs);
  EXPECT_EQ(uint64_t(RC->getInt("oracle_calls", -1)), Outer.OracleCalls);
  EXPECT_EQ(uint64_t(RC->getInt("inference_runs", -1)),
            Outer.InferenceRuns);
  EXPECT_EQ(uint64_t(RC->getInt("arena_nodes", -1)), Outer.ArenaNodes);
  EXPECT_EQ(uint64_t(RC->getInt("arena_bytes", -1)), Outer.ArenaBytes);
  EXPECT_EQ(uint64_t(RC->getInt("verdict_cache_hits", -1)),
            Outer.VerdictCacheHits);
}

TEST(ServerLedgerTest, HostileRequestIdsAreSanitizedInTheExemplar) {
  ServerEngine Engine;
  std::string Line = "{\"method\":\"check\",\"id\":\"../../etc/passwd\","
                     "\"session\":\"evil session\",\"source\":\"";
  Line += jsonEscape(BaseSource);
  Line += "\"}";
  parseReply(Engine.handle(Line));
  Engine.drain();

  // The first check is by definition the slowest so far: the exemplar
  // must be published, with both labels squeezed through the same
  // sanitizer the slow-trace filenames use.
  std::string Text = Engine.metricsPrometheus();
  size_t At = Text.find("seminal_slowest_request_info{");
  ASSERT_NE(At, std::string::npos) << Text;
  std::string InfoLine = Text.substr(At, Text.find('\n', At) - At);
  std::string WantId = obs::sanitizeRequestId("\"../../etc/passwd\"");
  EXPECT_EQ(WantId.find('/'), std::string::npos);
  EXPECT_NE(InfoLine.find("id=\"" + WantId + "\""), std::string::npos)
      << InfoLine;
  EXPECT_NE(InfoLine.find("session=\"evil_session\""), std::string::npos)
      << InfoLine;
  EXPECT_EQ(InfoLine.find('/'), std::string::npos)
      << "no hostile byte may reach the exposition: " << InfoLine;
  EXPECT_GT(
      Engine.registry().gauge("seminal_slowest_request_latency_us").value(),
      0);
}

//===----------------------------------------------------------------------===//
// SLO burn gauges and the profile verb
//===----------------------------------------------------------------------===//

TEST(ServerObsTest, TickSloPublishesBurnGauges) {
  ServerOptions Opts;
  Opts.Slo.TargetUs = 1; // 1us: every real check misses the target
  Opts.Slo.ObjectivePct = 50.0;
  ServerEngine Engine(Opts);
  obs::SloTracker::Burn Seed = Engine.tickSlo(); // seeds the ring
  EXPECT_EQ(Seed.Fast.Total, 0u);
  // The SLO watches *warm* latency (the editor-loop experience), so a
  // cold check alone must not move it: resubmit to produce one warm hit.
  Engine.handle(checkLine(1, "slo", BaseSource));
  Engine.handle(checkLine(2, "slo", EditedSource));
  Engine.drain();
  obs::SloTracker::Burn B = Engine.tickSlo();
  EXPECT_EQ(B.Fast.Total, 1u) << "only the warm resubmit counts";
  EXPECT_EQ(B.Fast.Bad, 1u) << "a millisecond-scale check misses a 1us SLO";
  EXPECT_NEAR(B.Fast.Burn, 2.0, 1e-12) << "100% bad on a 50% budget";

  std::string Text = Engine.metricsPrometheus();
  EXPECT_NE(Text.find("seminal_slo_burn_rate_milli{window=\"fast\"} 2000"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("seminal_slo_burn_rate_milli{window=\"slow\"} 2000"),
            std::string::npos)
      << Text;
}

TEST(ServerObsTest, ProfileVerbReturnsValidSnapshots) {
  ServerEngine Engine;
  Engine.handle(checkLine(1, "prof", BaseSource));

  // JSON format: the snapshot embeds as a parseable object.
  json::Value Reply = parseReply(Engine.handle(
      "{\"method\":\"profile\",\"id\":2,\"seconds\":1,\"format\":\"json\"}"));
  EXPECT_TRUE(Reply.getBool("ok", false));
  EXPECT_EQ(Reply.getInt("seconds", -1), 1);
  ASSERT_TRUE(Reply.member("profiler_running"));
  const json::Value *Profile = Reply.member("profile");
  ASSERT_TRUE(Profile && Profile->isObject());
  EXPECT_GE(Profile->getInt("samples", -1), 0);
  ASSERT_TRUE(Profile->member("stacks") &&
              Profile->member("stacks")->isArray());
  ASSERT_TRUE(Profile->member("cpu_self") &&
              Profile->member("cpu_self")->isArray());

  // Default format: collapsed stacks as an escaped string member.
  json::Value Collapsed = parseReply(
      Engine.handle("{\"method\":\"profile\",\"id\":3,\"seconds\":1}"));
  EXPECT_TRUE(Collapsed.getBool("ok", false));
  EXPECT_TRUE(Collapsed.member("collapsed"));
}

TEST(ServerObsTest, HttpDebugProfileServesBothFormats) {
  ServerEngine Engine;
  MetricsHttpServer Http(Engine, 0);
  std::string Error;
  ASSERT_TRUE(Http.start(Error)) << Error;

  std::string Json =
      httpGet(Http.port(), "/debug/profile?seconds=1&format=json");
  EXPECT_NE(Json.find("200 OK"), std::string::npos) << Json;
  EXPECT_NE(Json.find("application/json"), std::string::npos);
  size_t BodyAt = Json.find("\r\n\r\n");
  ASSERT_NE(BodyAt, std::string::npos);
  json::ParseResult P = json::parse(Json.substr(BodyAt + 4));
  ASSERT_TRUE(P.ok()) << Json.substr(BodyAt + 4);
  EXPECT_TRUE(P.Doc->member("samples"));
  EXPECT_TRUE(P.Doc->member("stacks"));

  // Bad parameters fall back to defaults instead of erroring, and the
  // collapsed default comes back as plain text.
  std::string Collapsed =
      httpGet(Http.port(), "/debug/profile?seconds=abc");
  EXPECT_NE(Collapsed.find("200 OK"), std::string::npos) << Collapsed;
  EXPECT_NE(Collapsed.find("text/plain"), std::string::npos);
  Http.stop();
}

TEST(ServerObsTest, SuggestionsIdenticalWithProfilerOnUnderConcurrency) {
  // The acceptance bar for "always-on profiling": eight shard workers,
  // sampler running hot, and every answer still byte-identical to a
  // cold unprofiled one-shot run.
  std::string ConvBase, ConvEdited;
  std::vector<std::string> ExpectBase = oneShotMessages(BaseSource, &ConvBase);
  std::vector<std::string> ExpectEdited =
      oneShotMessages(EditedSource, &ConvEdited);

  prof::Profiler::Options PO;
  PO.SampleHz = 1000;
  prof::profiler().start(PO);
  {
    ServerOptions Opts;
    Opts.Threads = 8;
    ServerEngine Engine(Opts);
    std::vector<std::thread> Clients;
    std::vector<std::string> BaseReplies(8), EditedReplies(8);
    for (int T = 0; T < 8; ++T)
      Clients.emplace_back([&Engine, &BaseReplies, &EditedReplies, T] {
        std::string Sess = "ident_" + std::to_string(T);
        BaseReplies[T] =
            Engine.handle(checkLine(T * 2, Sess.c_str(), BaseSource));
        EditedReplies[T] =
            Engine.handle(checkLine(T * 2 + 1, Sess.c_str(), EditedSource));
      });
    for (std::thread &C : Clients)
      C.join();
    Engine.drain();
    for (int T = 0; T < 8; ++T) {
      json::Value Base = parseReply(BaseReplies[T]);
      EXPECT_EQ(Base.getString("conventional"), ConvBase);
      const json::Value *S = Base.member("suggestions");
      ASSERT_TRUE(S && S->isArray());
      ASSERT_EQ(S->arrayValue().size(), ExpectBase.size());
      for (size_t I = 0; I < ExpectBase.size(); ++I)
        EXPECT_EQ(S->arrayValue()[I].getString("message"), ExpectBase[I]);

      json::Value Edited = parseReply(EditedReplies[T]);
      EXPECT_EQ(Edited.getString("conventional"), ConvEdited);
      const json::Value *E = Edited.member("suggestions");
      ASSERT_TRUE(E && E->isArray());
      ASSERT_EQ(E->arrayValue().size(), ExpectEdited.size());
      for (size_t I = 0; I < ExpectEdited.size(); ++I)
        EXPECT_EQ(E->arrayValue()[I].getString("message"), ExpectEdited[I]);
    }
  }
  prof::profiler().stop();
}

} // namespace
