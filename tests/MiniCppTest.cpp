//===- MiniCppTest.cpp - Tests for the C++ template prototype -------------==//
//
// Exercises the Section 4 prototype: deduction, delayed template-body
// checking with instantiation chains, the Figure 11 error wall, cascading
// errors, magicFun's deduction limits, and the end-to-end Figure 10
// scenario where the suggested fix is wrapping labs in ptr_fun.
//
//===----------------------------------------------------------------------===//

#include "minicpp/CcSearch.h"
#include "minicpp/CcStl.h"
#include "minicpp/CcTypeck.h"

#include <gtest/gtest.h>

using namespace seminal;
using namespace seminal::cpp;

namespace {

/// Builds the Figure 10 client over the mini-STL:
///
///   void myFun(vector<long>& inv, vector<long>& outv) {
///     transform(inv.begin(), inv.end(), outv.begin(),
///               compose1(bind1st(multiplies<long>(), 5), labs));
///   }
///
/// \p WrapPtrFun applies the known fix (labs -> ptr_fun(labs)).
CcProgram figure10(bool WrapPtrFun) {
  CcProgram Prog;
  addMiniStl(Prog);

  auto MyFun = std::make_unique<CcFuncDecl>();
  MyFun->Name = "myFun";
  MyFun->Params = {{"inv", ccVector(ccLong())},
                   {"outv", ccVector(ccLong())}};
  MyFun->RetType = ccVoid();

  std::vector<CcExprPtr> BindArgs;
  BindArgs.push_back(ccConstruct("multiplies", {ccLong()}, {}));
  BindArgs.push_back(ccIntLit(5));
  CcExprPtr Bound = ccCallNamed("bind1st", std::move(BindArgs));

  CcExprPtr Labs = ccVar("labs");
  if (WrapPtrFun) {
    std::vector<CcExprPtr> Wrapped;
    Wrapped.push_back(std::move(Labs));
    Labs = ccCallNamed("ptr_fun", std::move(Wrapped));
  }

  std::vector<CcExprPtr> ComposeArgs;
  ComposeArgs.push_back(std::move(Bound));
  ComposeArgs.push_back(std::move(Labs));
  CcExprPtr Composed = ccCallNamed("compose1", std::move(ComposeArgs));

  std::vector<CcExprPtr> TransformArgs;
  TransformArgs.push_back(ccMethodCall(ccVar("inv"), "begin", {}));
  TransformArgs.push_back(ccMethodCall(ccVar("inv"), "end", {}));
  TransformArgs.push_back(ccMethodCall(ccVar("outv"), "begin", {}));
  TransformArgs.push_back(std::move(Composed));
  MyFun->Body.push_back(
      ccExprStmt(ccCallNamed("transform", std::move(TransformArgs))));

  Prog.Funcs.push_back(std::move(MyFun));
  return Prog;
}

/// A minimal program with one ordinary function body.
CcProgram withMain(std::vector<CcStmt> Body) {
  CcProgram Prog;
  addMiniStl(Prog);
  auto Main = std::make_unique<CcFuncDecl>();
  Main->Name = "main";
  Main->RetType = ccInt();
  Main->Body = std::move(Body);
  Prog.Funcs.push_back(std::move(Main));
  return Prog;
}

//===----------------------------------------------------------------------===//
// Types and deduction
//===----------------------------------------------------------------------===//

TEST(CcTypeTest, Rendering) {
  EXPECT_EQ(ccLong()->str(), "long");
  EXPECT_EQ(ccPtr(ccLong())->str(), "long*");
  EXPECT_EQ(ccVector(ccLong())->str(), "vector<long>");
  EXPECT_EQ(ccFunc(ccLong(), {ccLong()})->str(), "long ()(long)");
  EXPECT_EQ(ccPtr(ccFunc(ccLong(), {ccLong()}))->str(), "long (*)(long)");
}

TEST(CcTypeTest, StructuralEquality) {
  EXPECT_TRUE(ccPtr(ccInt())->equals(*ccPtr(ccInt())));
  EXPECT_FALSE(ccPtr(ccInt())->equals(*ccPtr(ccLong())));
  EXPECT_FALSE(ccInt()->equals(*ccVector(ccInt())));
}

TEST(CcDeduceTest, SimpleTParam) {
  std::map<std::string, CcTypePtr> B;
  EXPECT_TRUE(deduce(ccTParam("T"), ccLong(), B));
  EXPECT_TRUE(B["T"]->equals(*ccLong()));
}

TEST(CcDeduceTest, ConsistentBindingRequired) {
  std::map<std::string, CcTypePtr> B;
  EXPECT_TRUE(deduce(ccTParam("T"), ccLong(), B));
  EXPECT_FALSE(deduce(ccTParam("T"), ccInt(), B));
}

TEST(CcDeduceTest, ThroughStructure) {
  std::map<std::string, CcTypePtr> B;
  EXPECT_TRUE(deduce(ccVector(ccTParam("T")), ccVector(ccInt()), B));
  EXPECT_TRUE(B["T"]->equals(*ccInt()));
}

TEST(CcDeduceTest, FunctionDecaysAgainstPointerParam) {
  // ptr_fun's parameter R(*)(A) must deduce from a bare function type.
  std::map<std::string, CcTypePtr> B;
  CcTypePtr Pattern = ccPtr(ccFunc(ccTParam("R"), {ccTParam("A")}));
  CcTypePtr LabsTy = ccFunc(ccLong(), {ccLong()});
  EXPECT_TRUE(deduce(Pattern, LabsTy, B));
  EXPECT_TRUE(B["R"]->equals(*ccLong()));
  EXPECT_TRUE(B["A"]->equals(*ccLong()));
}

TEST(CcDeduceTest, BareTParamDoesNotDecay) {
  // compose1's const Op2& parameter binds the *function type* itself.
  std::map<std::string, CcTypePtr> B;
  CcTypePtr LabsTy = ccFunc(ccLong(), {ccLong()});
  EXPECT_TRUE(deduce(ccTParam("Op2"), LabsTy, B));
  EXPECT_TRUE(B["Op2"]->isFunction());
}

//===----------------------------------------------------------------------===//
// Checking well-typed programs
//===----------------------------------------------------------------------===//

TEST(CcCheckTest, EmptyProgramIsFine) {
  CcProgram Prog;
  addMiniStl(Prog);
  EXPECT_TRUE(checkProgram(Prog).ok());
}

TEST(CcCheckTest, SimpleArithmetic) {
  std::vector<CcStmt> Body;
  Body.push_back(ccVarDecl(ccInt(), "x",
                           ccBinary("+", ccIntLit(1), ccIntLit(2))));
  Body.push_back(ccReturn(ccVar("x")));
  EXPECT_TRUE(checkProgram(withMain(std::move(Body))).ok());
}

TEST(CcCheckTest, OrdinaryFunctionCallAndConversion) {
  std::vector<CcStmt> Body;
  std::vector<CcExprPtr> Args;
  Args.push_back(ccIntLit(3)); // int converts to long
  Body.push_back(ccVarDecl(ccLong(), "y", ccCallNamed("labs", std::move(Args))));
  Body.push_back(ccReturn(ccIntLit(0)));
  EXPECT_TRUE(checkProgram(withMain(std::move(Body))).ok());
}

TEST(CcCheckTest, FunctorConstructionAndCall) {
  // multiplies<long>()(2, 3) through the generic call operator.
  std::vector<CcStmt> Body;
  std::vector<CcExprPtr> CallArgs;
  CallArgs.push_back(ccIntLit(2));
  CallArgs.push_back(ccIntLit(3));
  Body.push_back(ccVarDecl(
      ccInt(), "p",
      ccCall(ccConstruct("multiplies", {ccLong()}, {}),
             std::move(CallArgs))));
  Body.push_back(ccReturn(ccIntLit(0)));
  EXPECT_TRUE(checkProgram(withMain(std::move(Body))).ok());
}

TEST(CcCheckTest, Figure10FixedVersionChecks) {
  CcProgram Prog = figure10(/*WrapPtrFun=*/true);
  CcCheckResult R = checkProgram(Prog);
  EXPECT_TRUE(R.ok()) << R.str();
}

//===----------------------------------------------------------------------===//
// Error behavior
//===----------------------------------------------------------------------===//

TEST(CcCheckTest, UndeclaredVariable) {
  std::vector<CcStmt> Body;
  Body.push_back(ccReturn(ccVar("nope")));
  CcCheckResult R = checkProgram(withMain(std::move(Body)));
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].Message.find("was not declared"),
            std::string::npos);
}

TEST(CcCheckTest, BadConversionReportsBothTypes) {
  std::vector<CcStmt> Body;
  Body.push_back(ccVarDecl(ccVector(ccInt()), "v", ccIntLit(1)));
  CcCheckResult R = checkProgram(withMain(std::move(Body)));
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].Message.find("vector<int>"), std::string::npos);
}

TEST(CcCheckTest, PerStatementRecoveryYieldsMultipleErrors) {
  std::vector<CcStmt> Body;
  Body.push_back(ccReturn(ccVar("a")));
  Body.push_back(ccReturn(ccVar("b")));
  CcCheckResult R = checkProgram(withMain(std::move(Body)));
  EXPECT_EQ(R.Errors.size(), 2u);
}

TEST(CcCheckTest, Figure10ProducesTheFieldError) {
  CcProgram Prog = figure10(/*WrapPtrFun=*/false);
  CcCheckResult R = checkProgram(Prog);
  ASSERT_FALSE(R.ok());
  // The first error is the field of function type, inside the
  // unary_compose instantiation (Figure 11's opening lines).
  EXPECT_NE(R.Errors[0].Message.find("invalidly declared function type"),
            std::string::npos)
      << R.str();
  ASSERT_FALSE(R.Errors[0].Chain.empty());
  // The innermost instantiation context (last pushed) is unary_compose.
  EXPECT_NE(R.Errors[0].Chain.back().find("unary_compose<"),
            std::string::npos);
  // The outer context is the compose1 call.
  EXPECT_NE(R.Errors[0].Chain.front().find("compose1<"), std::string::npos);
  EXPECT_EQ(R.Errors[0].InFunction, "myFun");
}

TEST(CcCheckTest, Figure10CascadesIntoNoMatchForCall) {
  CcProgram Prog = figure10(false);
  CcCheckResult R = checkProgram(Prog);
  ASSERT_GE(R.Errors.size(), 2u) << R.str();
  // The second group: no match for call to (unary_compose<...>) (long).
  bool FoundCascade = false;
  for (const auto &E : R.Errors)
    if (E.Message.find("no match for call to") != std::string::npos &&
        E.Message.find("unary_compose<") != std::string::npos)
      FoundCascade = true;
  EXPECT_TRUE(FoundCascade) << R.str();
}

TEST(CcCheckTest, InstantiationChainMentionsTransform) {
  CcProgram Prog = figure10(false);
  CcCheckResult R = checkProgram(Prog);
  bool FoundTransformChain = false;
  for (const auto &E : R.Errors)
    for (const auto &C : E.Chain)
      if (C.find("transform<") != std::string::npos)
        FoundTransformChain = true;
  EXPECT_TRUE(FoundTransformChain) << R.str();
}

TEST(CcCheckTest, MagicFunDeducesOnlyWithExpectedType) {
  // long y = magicFun(0);   -- fine, B := long.
  {
    std::vector<CcStmt> Body;
    std::vector<CcExprPtr> Args;
    Args.push_back(ccIntLit(0));
    Body.push_back(
        ccVarDecl(ccLong(), "y", ccCallNamed("magicFun", std::move(Args))));
    Body.push_back(ccReturn(ccIntLit(0)));
    EXPECT_TRUE(checkProgram(withMain(std::move(Body))).ok());
  }
  // magicFun(0);            -- no context: cannot deduce B.
  {
    std::vector<CcStmt> Body;
    std::vector<CcExprPtr> Args;
    Args.push_back(ccIntLit(0));
    Body.push_back(ccExprStmt(ccCallNamed("magicFun", std::move(Args))));
    Body.push_back(ccReturn(ccIntLit(0)));
    CcCheckResult R = checkProgram(withMain(std::move(Body)));
    ASSERT_FALSE(R.ok());
    EXPECT_NE(R.Errors[0].Message.find("couldn't deduce"),
              std::string::npos);
  }
  // magicFunVoid(0);        -- the void variant always works.
  {
    std::vector<CcStmt> Body;
    std::vector<CcExprPtr> Args;
    Args.push_back(ccIntLit(0));
    Body.push_back(ccExprStmt(ccCallNamed("magicFunVoid", std::move(Args))));
    Body.push_back(ccReturn(ccIntLit(0)));
    EXPECT_TRUE(checkProgram(withMain(std::move(Body))).ok());
  }
}

//===----------------------------------------------------------------------===//
// The searcher
//===----------------------------------------------------------------------===//

TEST(CcSearchTest, WellTypedInputBypasses) {
  CcProgram Prog = figure10(true);
  CcReport R = runCppSeminal(Prog);
  EXPECT_TRUE(R.inputTypechecks());
  EXPECT_TRUE(R.Suggestions.empty());
}

TEST(CcSearchTest, Figure10SuggestsPtrFun) {
  CcProgram Prog = figure10(false);
  CcReport R = runCppSeminal(Prog);
  ASSERT_FALSE(R.Suggestions.empty()) << R.Baseline.str();
  const CcSuggestion &Top = R.Suggestions.front();
  EXPECT_EQ(Top.TheKind, CcSuggestion::Kind::Constructive);
  EXPECT_EQ(Top.Before, "labs");
  EXPECT_EQ(Top.After, "ptr_fun(labs)");
  // The fix eliminates every baseline error.
  EXPECT_EQ(Top.ErrorsFixed, unsigned(R.Baseline.Errors.size()));
  std::string Msg = R.bestMessage();
  EXPECT_NE(Msg.find("ptr_fun(labs)"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("myFun"), std::string::npos) << Msg;
}

TEST(CcSearchTest, SearchRestoresTheProgram) {
  CcProgram Prog = figure10(false);
  CcCheckResult Before = checkProgram(Prog);
  CcReport R = runCppSeminal(Prog);
  (void)R;
  CcCheckResult After = checkProgram(Prog);
  EXPECT_EQ(Before.str(), After.str());
}

TEST(CcSearchTest, SpuriousPtrFunIsUnwrapped) {
  // abs expects a plain function argument... model: calling labs with a
  // ptr_fun-wrapped value through an ordinary signature fails; removing
  // the wrapper fixes it.
  CcProgram Prog;
  addMiniStl(Prog);
  auto F = std::make_unique<CcFuncDecl>();
  F->Name = "caller";
  F->RetType = ccLong();
  std::vector<CcExprPtr> Wrapped;
  Wrapped.push_back(ccIntLit(3));
  std::vector<CcExprPtr> Args;
  Args.push_back(ccCallNamed("ptr_fun", std::move(Wrapped)));
  F->Body.push_back(ccReturn(ccCallNamed("labs", std::move(Args))));
  Prog.Funcs.push_back(std::move(F));

  CcReport R = runCppSeminal(Prog);
  ASSERT_FALSE(R.inputTypechecks());
  bool FoundUnwrap = false;
  for (const auto &S : R.Suggestions)
    if (S.Description.find("remove the ptr_fun wrapper") !=
        std::string::npos)
      FoundUnwrap = true;
  EXPECT_TRUE(FoundUnwrap);
}

TEST(CcSearchTest, SwappedArgumentsSuggested) {
  // pow2(long base, int exp) called as pow2(exp-ish int, long) -- only a
  // vector type makes the swap detectable, so use (vector, long).
  CcProgram Prog;
  addMiniStl(Prog);
  auto Helper = std::make_unique<CcFuncDecl>();
  Helper->Name = "sum";
  Helper->Params = {{"v", ccVector(ccLong())}, {"n", ccLong()}};
  Helper->RetType = ccLong();
  Prog.Funcs.push_back(std::move(Helper));

  auto F = std::make_unique<CcFuncDecl>();
  F->Name = "caller";
  F->Params = {{"data", ccVector(ccLong())}};
  F->RetType = ccLong();
  std::vector<CcExprPtr> Args;
  Args.push_back(ccIntLit(3));
  Args.push_back(ccVar("data"));
  F->Body.push_back(ccReturn(ccCallNamed("sum", std::move(Args))));
  Prog.Funcs.push_back(std::move(F));

  CcReport R = runCppSeminal(Prog);
  ASSERT_FALSE(R.inputTypechecks());
  ASSERT_FALSE(R.Suggestions.empty());
  bool FoundSwap = false;
  for (const auto &S : R.Suggestions)
    if (S.Description.find("swap arguments") != std::string::npos)
      FoundSwap = true;
  EXPECT_TRUE(FoundSwap);
}

TEST(CcSearchTest, HoistingIsolatesBrokenArguments) {
  // A call that is wrong as a whole, whose arguments are individually
  // fine: hoisting succeeds per the error-improvement criterion.
  CcProgram Prog;
  addMiniStl(Prog);
  auto F = std::make_unique<CcFuncDecl>();
  F->Name = "caller";
  F->RetType = ccVoid();
  std::vector<CcExprPtr> Args;
  Args.push_back(ccIntLit(1));
  Args.push_back(ccIntLit(2));
  F->Body.push_back(ccExprStmt(ccCallNamed("labs", std::move(Args))));
  F->Body.push_back(ccReturn(nullptr));
  Prog.Funcs.push_back(std::move(F));

  CcReport R = runCppSeminal(Prog);
  ASSERT_FALSE(R.inputTypechecks());
  bool FoundHoist = false;
  for (const auto &S : R.Suggestions)
    if (S.TheKind == CcSuggestion::Kind::Hoist)
      FoundHoist = true;
  EXPECT_TRUE(FoundHoist);
}

TEST(CcSearchTest, OracleCallsAreCounted) {
  CcProgram Prog = figure10(false);
  CcReport R = runCppSeminal(Prog);
  EXPECT_GT(R.OracleCalls, 1u);
}

} // namespace
