//===- ParserTest.cpp - Tests for the mini-Caml parser ---------------------==//

#include "minicaml/Parser.h"
#include "minicaml/Printer.h"

#include <gtest/gtest.h>

using namespace seminal;
using namespace seminal::caml;

namespace {

ExprPtr expr(const std::string &Source) {
  ParseExprResult R = parseExpression(Source);
  EXPECT_TRUE(R.ok()) << (R.Error ? R.Error->str() : "");
  return std::move(R.E);
}

Program program(const std::string &Source) {
  ParseResult R = parseProgram(Source);
  EXPECT_TRUE(R.ok()) << (R.Error ? R.Error->str() : "");
  return R.ok() ? std::move(*R.Prog) : Program();
}

TEST(ParserExprTest, Literals) {
  EXPECT_EQ(expr("42")->kind(), Expr::Kind::IntLit);
  EXPECT_EQ(expr("true")->kind(), Expr::Kind::BoolLit);
  EXPECT_EQ(expr("\"hi\"")->kind(), Expr::Kind::StringLit);
  EXPECT_EQ(expr("()")->kind(), Expr::Kind::UnitLit);
}

TEST(ParserExprTest, ApplicationFlattens) {
  ExprPtr E = expr("f a b c");
  ASSERT_EQ(E->kind(), Expr::Kind::App);
  EXPECT_EQ(E->numChildren(), 4u); // callee + 3 args
  EXPECT_EQ(E->child(0)->Name, "f");
  EXPECT_EQ(E->child(3)->Name, "c");
}

TEST(ParserExprTest, ApplicationBindsTighterThanOperators) {
  ExprPtr E = expr("f x + g y");
  ASSERT_EQ(E->kind(), Expr::Kind::BinOp);
  EXPECT_EQ(E->Name, "+");
  EXPECT_EQ(E->child(0)->kind(), Expr::Kind::App);
  EXPECT_EQ(E->child(1)->kind(), Expr::Kind::App);
}

TEST(ParserExprTest, ArithmeticPrecedence) {
  ExprPtr E = expr("1 + 2 * 3");
  ASSERT_EQ(E->kind(), Expr::Kind::BinOp);
  EXPECT_EQ(E->Name, "+");
  EXPECT_EQ(E->child(1)->Name, "*");
}

TEST(ParserExprTest, ComparisonIsLowerThanArithmetic) {
  ExprPtr E = expr("a + 1 = b");
  EXPECT_EQ(E->Name, "=");
}

TEST(ParserExprTest, ConsIsRightAssociative) {
  ExprPtr E = expr("1 :: 2 :: []");
  ASSERT_EQ(E->kind(), Expr::Kind::Cons);
  EXPECT_EQ(E->child(1)->kind(), Expr::Kind::Cons);
}

TEST(ParserExprTest, ListWithSemicolons) {
  ExprPtr E = expr("[1; 2; 3]");
  ASSERT_EQ(E->kind(), Expr::Kind::List);
  EXPECT_EQ(E->numChildren(), 3u);
}

TEST(ParserExprTest, ListWithCommasIsSingletonTuple) {
  // The classic Caml pitfall the paper's constructive change targets
  // (Section 5.3): [1, 2, 3] is a one-element list holding a triple.
  ExprPtr E = expr("[1, 2, 3]");
  ASSERT_EQ(E->kind(), Expr::Kind::List);
  ASSERT_EQ(E->numChildren(), 1u);
  EXPECT_EQ(E->child(0)->kind(), Expr::Kind::Tuple);
  EXPECT_EQ(E->child(0)->numChildren(), 3u);
}

TEST(ParserExprTest, TupleExpression) {
  ExprPtr E = expr("(1, \"two\", true)");
  ASSERT_EQ(E->kind(), Expr::Kind::Tuple);
  EXPECT_EQ(E->numChildren(), 3u);
}

TEST(ParserExprTest, FunWithTupledParameter) {
  ExprPtr E = expr("fun (x, y) -> x + y");
  ASSERT_EQ(E->kind(), Expr::Kind::Fun);
  ASSERT_EQ(E->Params.size(), 1u);
  EXPECT_EQ(E->Params[0]->kind(), Pattern::Kind::Tuple);
}

TEST(ParserExprTest, FunWithCurriedParameters) {
  ExprPtr E = expr("fun x y -> x + y");
  ASSERT_EQ(E->kind(), Expr::Kind::Fun);
  EXPECT_EQ(E->Params.size(), 2u);
}

TEST(ParserExprTest, LetIn) {
  ExprPtr E = expr("let x = 1 in x + 1");
  ASSERT_EQ(E->kind(), Expr::Kind::Let);
  EXPECT_FALSE(E->IsRec);
  EXPECT_EQ(E->Binding->kind(), Pattern::Kind::Var);
}

TEST(ParserExprTest, LetRecFunctionSugar) {
  ExprPtr E = expr("let rec f x y = x in f");
  ASSERT_EQ(E->kind(), Expr::Kind::Let);
  EXPECT_TRUE(E->IsRec);
  EXPECT_EQ(E->Params.size(), 2u);
}

TEST(ParserExprTest, LetTuplePattern) {
  ExprPtr E = expr("let (a, b) = p in a");
  ASSERT_EQ(E->kind(), Expr::Kind::Let);
  EXPECT_EQ(E->Binding->kind(), Pattern::Kind::Tuple);
  EXPECT_TRUE(E->Params.empty());
}

TEST(ParserExprTest, IfThenElse) {
  ExprPtr E = expr("if a then b else c");
  ASSERT_EQ(E->kind(), Expr::Kind::If);
  EXPECT_EQ(E->numChildren(), 3u);
}

TEST(ParserExprTest, IfWithoutElse) {
  ExprPtr E = expr("if a then b");
  ASSERT_EQ(E->kind(), Expr::Kind::If);
  EXPECT_EQ(E->numChildren(), 2u);
}

TEST(ParserExprTest, MatchWithArms) {
  ExprPtr E = expr("match x with 0 -> \"zero\" | _ -> \"other\"");
  ASSERT_EQ(E->kind(), Expr::Kind::Match);
  EXPECT_EQ(E->numChildren(), 3u); // scrutinee + 2 bodies
  EXPECT_EQ(E->ArmPats.size(), 2u);
}

TEST(ParserExprTest, MatchLeadingBar) {
  ExprPtr E = expr("match x with | 0 -> 1 | _ -> 2");
  EXPECT_EQ(E->ArmPats.size(), 2u);
}

TEST(ParserExprTest, NestedMatchSwallowsOuterArms) {
  // Without parentheses the inner match takes the trailing arm -- the
  // behavior motivating the paper's reparenthesizing change.
  ExprPtr E = expr("match x with 0 -> match y with 1 -> 2 | _ -> 3");
  ASSERT_EQ(E->kind(), Expr::Kind::Match);
  EXPECT_EQ(E->ArmPats.size(), 1u); // outer has ONE arm
  const Expr *Inner = E->child(1);
  ASSERT_EQ(Inner->kind(), Expr::Kind::Match);
  EXPECT_EQ(Inner->ArmPats.size(), 2u);
}

TEST(ParserExprTest, SequenceExpression) {
  ExprPtr E = expr("print_string \"x\"; 1");
  ASSERT_EQ(E->kind(), Expr::Kind::Seq);
}

TEST(ParserExprTest, RaiseExpression) {
  ExprPtr E = expr("raise Not_found");
  ASSERT_EQ(E->kind(), Expr::Kind::Raise);
  EXPECT_EQ(E->child(0)->kind(), Expr::Kind::Constr);
}

TEST(ParserExprTest, ConstructorApplication) {
  ExprPtr E = expr("Some 3");
  ASSERT_EQ(E->kind(), Expr::Kind::Constr);
  EXPECT_EQ(E->Name, "Some");
  ASSERT_EQ(E->numChildren(), 1u);
}

TEST(ParserExprTest, QualifiedName) {
  ExprPtr E = expr("List.map f xs");
  ASSERT_EQ(E->kind(), Expr::Kind::App);
  EXPECT_EQ(E->child(0)->kind(), Expr::Kind::Var);
  EXPECT_EQ(E->child(0)->Name, "List.map");
}

TEST(ParserExprTest, RefOperations) {
  ExprPtr E = expr("r := !r + 1");
  ASSERT_EQ(E->kind(), Expr::Kind::BinOp);
  EXPECT_EQ(E->Name, ":=");
  EXPECT_EQ(E->child(1)->child(0)->kind(), Expr::Kind::UnaryOp);
}

TEST(ParserExprTest, FieldAccessAndUpdate) {
  ExprPtr E = expr("p.x <- p.x + 1");
  ASSERT_EQ(E->kind(), Expr::Kind::SetField);
  EXPECT_EQ(E->Name, "x");
  EXPECT_EQ(E->child(0)->kind(), Expr::Kind::Var);
}

TEST(ParserExprTest, RecordLiteral) {
  ExprPtr E = expr("{ x = 1; y = \"s\" }");
  ASSERT_EQ(E->kind(), Expr::Kind::Record);
  EXPECT_EQ(E->FieldNames.size(), 2u);
}

TEST(ParserExprTest, BeginEnd) {
  ExprPtr E = expr("begin 1 + 2 end");
  EXPECT_EQ(E->kind(), Expr::Kind::BinOp);
}

TEST(ParserExprTest, UnaryOperators) {
  EXPECT_EQ(expr("not b")->kind(), Expr::Kind::UnaryOp);
  EXPECT_EQ(expr("-x")->kind(), Expr::Kind::UnaryOp);
  EXPECT_EQ(expr("!r")->kind(), Expr::Kind::UnaryOp);
}

TEST(ParserExprTest, StringConcatIsRightAssociative) {
  ExprPtr E = expr("a ^ b ^ c");
  ASSERT_EQ(E->kind(), Expr::Kind::BinOp);
  EXPECT_EQ(E->child(1)->Name, "^");
}

TEST(ParserExprTest, SpansCoverSource) {
  std::string Source = "f (x + y) z";
  ExprPtr E = expr(Source);
  EXPECT_EQ(E->Span.Begin.Offset, 0u);
  EXPECT_EQ(E->Span.EndOffset, Source.size());
  // The parenthesized argument's span covers the parens.
  const Expr *Arg = E->child(1);
  EXPECT_EQ(Arg->Span.Begin.Offset, 2u);
  EXPECT_EQ(Arg->Span.EndOffset, 9u);
}

TEST(ParserExprTest, ErrorsReportLocation) {
  ParseExprResult R = parseExpression("1 + ");
  ASSERT_FALSE(R.ok());
  EXPECT_FALSE(R.Error->Message.empty());
}

TEST(ParserProgramTest, MultipleDecls) {
  Program P = program("let x = 1\nlet y = x + 1\nlet z = y");
  EXPECT_EQ(P.Decls.size(), 3u);
}

TEST(ParserProgramTest, SemiSemiSeparators) {
  Program P = program("let x = 1;;\nlet y = 2;;");
  EXPECT_EQ(P.Decls.size(), 2u);
}

TEST(ParserProgramTest, FunctionDeclSugar) {
  Program P = program("let add x y = x + y");
  ASSERT_EQ(P.Decls.size(), 1u);
  EXPECT_EQ(P.Decls[0]->Params.size(), 2u);
}

TEST(ParserProgramTest, VariantTypeDecl) {
  Program P = program("type move = For of int * move list | Turn | Go");
  ASSERT_EQ(P.Decls.size(), 1u);
  const Decl &D = *P.Decls[0];
  EXPECT_EQ(D.kind(), Decl::Kind::Type);
  ASSERT_EQ(D.Cases.size(), 3u);
  EXPECT_EQ(D.Cases[0].Name, "For");
  EXPECT_NE(D.Cases[0].ArgType, nullptr);
  EXPECT_EQ(D.Cases[1].ArgType, nullptr);
}

TEST(ParserProgramTest, ParameterizedTypeDecl) {
  Program P = program("type 'a tree = Leaf | Node of 'a tree * 'a * 'a tree");
  ASSERT_EQ(P.Decls.size(), 1u);
  EXPECT_EQ(P.Decls[0]->TypeParams.size(), 1u);
}

TEST(ParserProgramTest, RecordTypeDecl) {
  Program P = program("type point = { mutable x : int; y : int }");
  ASSERT_EQ(P.Decls.size(), 1u);
  const Decl &D = *P.Decls[0];
  EXPECT_TRUE(D.IsRecord);
  ASSERT_EQ(D.Fields.size(), 2u);
  EXPECT_TRUE(D.Fields[0].IsMutable);
  EXPECT_FALSE(D.Fields[1].IsMutable);
}

TEST(ParserProgramTest, ExceptionDecl) {
  Program P = program("exception BadInput of string\nexception Stop");
  ASSERT_EQ(P.Decls.size(), 2u);
  EXPECT_NE(P.Decls[0]->ExcArgType, nullptr);
  EXPECT_EQ(P.Decls[1]->ExcArgType, nullptr);
}

TEST(ParserProgramTest, Figure2ProgramParses) {
  Program P = program(
      "let map2 f aList bList =\n"
      "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
      "let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n"
      "let ans = List.filter (fun x -> x == 0) lst\n");
  EXPECT_EQ(P.Decls.size(), 3u);
}

TEST(ParserProgramTest, CloneAndEqualsRoundTrip) {
  Program P = program("let f x = x + 1\nlet y = f 2");
  Program Q = P.clone();
  EXPECT_TRUE(P.equals(Q));
  // Mutating the clone breaks equality.
  Q.Decls[1]->Rhs = makeIntLit(0);
  EXPECT_FALSE(P.equals(Q));
}

TEST(ParserProgramTest, PathResolutionRoundTrip) {
  Program P = program("let y = f (g 1) 2");
  NodePath Path(0);
  Path.Steps = {1}; // first argument of the application
  Expr *Node = resolvePath(P, Path);
  ASSERT_NE(Node, nullptr);
  EXPECT_EQ(Node->kind(), Expr::Kind::App);
  ExprPtr Old = replaceAtPath(P, Path, makeWildcard());
  EXPECT_EQ(Old->kind(), Expr::Kind::App);
  EXPECT_EQ(resolvePath(P, Path)->kind(), Expr::Kind::Wildcard);
}

TEST(ParserProgramTest, BadPathResolvesToNull) {
  Program P = program("let y = 1");
  NodePath Path(0);
  Path.Steps = {5};
  EXPECT_EQ(resolvePath(P, Path), nullptr);
  NodePath Far(7);
  EXPECT_EQ(resolvePath(P, Far), nullptr);
}

} // namespace
