//===- CliTest.cpp - Stream-discipline tests for seminal_cli --------------==//
//
// The CLI's machine-output contract: under --json, stdout carries
// exactly one JSON document and nothing else -- every human-facing
// render (metrics, trace summary, progress) goes to stderr, so
// `seminal_cli --json ... > out.json` is always valid. These tests run
// the real binary (path injected by CMake as SEMINAL_CLI_PATH) and
// parse what lands on each stream.
//
//===----------------------------------------------------------------------==//

#include "JsonTestUtil.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <sys/wait.h>

using namespace seminal;

namespace {

struct RunResult {
  std::string Stdout;
  int ExitCode = -1;
};

/// Runs a shell command, capturing stdout; stderr goes wherever the
/// redirection in \p Command sends it.
RunResult run(const std::string &Command) {
  RunResult R;
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return R;
  std::array<char, 4096> Buf;
  size_t N;
  while ((N = fread(Buf.data(), 1, Buf.size(), Pipe)) > 0)
    R.Stdout.append(Buf.data(), N);
  int Status = pclose(Pipe);
  if (WIFEXITED(Status))
    R.ExitCode = WEXITSTATUS(Status);
  return R;
}

std::string cli() { return SEMINAL_CLI_PATH; }

/// The Figure 2 expression: one type error, rich search.
const char *ErrExpr = "let lst = List.map (fun (x, y) -> x + y) [1;2;3]";

} // namespace

TEST(CliStreamTest, JsonModeEmitsOnlyJsonOnStdout) {
  // --metrics is on purpose: its render must land on stderr, never
  // interleave with the JSON document.
  RunResult R = run(cli() + " --expr '" + ErrExpr +
                    "' --json --metrics 2>/dev/null");
  EXPECT_EQ(R.ExitCode, 1) << "an error was found, so the exit code is 1";
  EXPECT_TRUE(JsonValidator(R.Stdout).valid())
      << "stdout is not one JSON document:\n"
      << R.Stdout;
  EXPECT_NE(R.Stdout.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(R.Stdout.find("\"suggestions\""), std::string::npos);
}

TEST(CliStreamTest, HumanRendersGoToStderr) {
  RunResult R = run(cli() + " --expr '" + ErrExpr +
                    "' --json --metrics 2>&1 1>/dev/null");
  EXPECT_EQ(R.ExitCode, 1);
  // The stderr side carries the human-readable renders ...
  EXPECT_FALSE(R.Stdout.empty());
  // ... and is NOT the JSON document.
  EXPECT_FALSE(JsonValidator(R.Stdout).valid());
}

TEST(CliStreamTest, WellTypedInputExitsZeroWithJson) {
  RunResult R = run(cli() + " --expr 'let x = 1 + 2' --json 2>/dev/null");
  EXPECT_EQ(R.ExitCode, 0);
  EXPECT_TRUE(JsonValidator(R.Stdout).valid()) << R.Stdout;
  EXPECT_NE(R.Stdout.find("\"input_typechecks\": true"), std::string::npos)
      << R.Stdout;
}

TEST(CliStreamTest, BadUsageExitsTwo) {
  RunResult R = run(cli() + " --definitely-not-a-flag 2>/dev/null");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_TRUE(R.Stdout.empty()) << "usage errors must not write stdout";
}
