//===- CorpusTest.cpp - Tests for the synthetic corpus ---------------------==//

#include "corpus/Generator.h"
#include "corpus/Mutation.h"
#include "corpus/Programs.h"
#include "minicaml/Infer.h"
#include "minicaml/Parser.h"
#include "minicaml/Printer.h"

#include <gtest/gtest.h>

using namespace seminal;
using namespace seminal::caml;

namespace {

Program parse(const std::string &Source) {
  ParseResult R = parseProgram(Source);
  EXPECT_TRUE(R.ok()) << (R.Error ? R.Error->str() : "");
  return R.ok() ? std::move(*R.Prog) : Program();
}

//===----------------------------------------------------------------------===//
// Assignment templates
//===----------------------------------------------------------------------===//

class TemplateSweep : public ::testing::TestWithParam<int> {};

TEST_P(TemplateSweep, ParsesAndTypechecks) {
  const AssignmentTemplate &A =
      assignmentTemplates()[size_t(GetParam())];
  ParseResult R = parseProgram(A.Source);
  ASSERT_TRUE(R.ok()) << A.Title << ": "
                      << (R.Error ? R.Error->str() : "");
  TypecheckResult T = typecheckProgram(*R.Prog);
  EXPECT_TRUE(T.ok()) << A.Title << ": "
                      << (T.Error ? T.Error->Message : "");
}

TEST_P(TemplateSweep, RoundTripsThroughPrinter) {
  const AssignmentTemplate &A =
      assignmentTemplates()[size_t(GetParam())];
  Program P = parse(A.Source);
  std::string Printed = printProgram(P);
  Program Q = parse(Printed);
  EXPECT_TRUE(P.equals(Q)) << A.Title;
}

INSTANTIATE_TEST_SUITE_P(All, TemplateSweep, ::testing::Range(0, 5));

TEST(TemplatesTest, ThereAreFiveAssignments) {
  EXPECT_EQ(assignmentTemplates().size(), 5u);
  EXPECT_GE(parse(assignmentTemplates()[0].Source).Decls.size(), 10u);
}

//===----------------------------------------------------------------------===//
// Single mutations
//===----------------------------------------------------------------------===//

class MutationKindSweep : public ::testing::TestWithParam<int> {};

TEST_P(MutationKindSweep, AppliesSomewhereInTheCorpus) {
  MutationKind Kind = MutationKind(GetParam());
  Rng R(99);
  bool AppliedSomewhere = false;
  for (const AssignmentTemplate &A : assignmentTemplates()) {
    Program P = parse(A.Source);
    if (auto M = applyOneMutation(P, Kind, R)) {
      AppliedSomewhere = true;
      ASSERT_EQ(M->Truths.size(), 1u);
      const GroundTruth &T = M->Truths[0];
      EXPECT_EQ(T.Kind, Kind);
      EXPECT_NE(T.Before, T.After) << mutationKindName(Kind);
      // The mutated program still parses after printing (it is a valid
      // untyped AST even when ill-typed).
      Program Reparsed = parse(printProgram(M->Mutated));
      EXPECT_TRUE(M->Mutated.equals(Reparsed)) << mutationKindName(Kind);
    }
  }
  EXPECT_TRUE(AppliedSomewhere)
      << "no template offers a site for " << mutationKindName(Kind);
}

TEST_P(MutationKindSweep, GroundTruthPathResolves) {
  MutationKind Kind = MutationKind(GetParam());
  Rng R(7);
  for (const AssignmentTemplate &A : assignmentTemplates()) {
    Program P = parse(A.Source);
    auto M = applyOneMutation(P, Kind, R);
    if (!M)
      continue;
    const NodePath &Path = M->Truths[0].Path;
    // Paths with steps must resolve; decl-level paths must be in range.
    if (!Path.Steps.empty())
      EXPECT_NE(resolvePath(M->Mutated, Path), nullptr)
          << mutationKindName(Kind);
    else
      EXPECT_LT(Path.DeclIndex, M->Mutated.Decls.size());
  }
}

INSTANTIATE_TEST_SUITE_P(All, MutationKindSweep,
                         ::testing::Range(0, NumMutationKinds));

TEST(MutationTest, MutateProgramProducesIllTypedResult) {
  Rng R(42);
  Program P = parse(assignmentTemplates()[0].Source);
  for (int I = 0; I < 10; ++I) {
    auto M = mutateProgram(P, 1, R);
    ASSERT_TRUE(M.has_value());
    EXPECT_FALSE(typecheckProgram(M->Mutated).ok());
    EXPECT_GE(M->Truths.size(), 1u);
  }
}

TEST(MutationTest, MultiErrorMutantsCarrySeveralTruths) {
  Rng R(43);
  Program P = parse(assignmentTemplates()[1].Source);
  bool SawMulti = false;
  for (int I = 0; I < 10 && !SawMulti; ++I) {
    auto M = mutateProgram(P, 3, R);
    if (M && M->Truths.size() >= 2)
      SawMulti = true;
  }
  EXPECT_TRUE(SawMulti);
}

TEST(MutationTest, TruthPathsAreDisjoint) {
  Rng R(44);
  Program P = parse(assignmentTemplates()[3].Source);
  for (int I = 0; I < 5; ++I) {
    auto M = mutateProgram(P, 3, R);
    ASSERT_TRUE(M.has_value());
    for (size_t A = 0; A < M->Truths.size(); ++A)
      for (size_t B = A + 1; B < M->Truths.size(); ++B) {
        const auto &PA = M->Truths[A].Path;
        const auto &PB = M->Truths[B].Path;
        if (PA.DeclIndex != PB.DeclIndex)
          continue;
        size_t N = std::min(PA.Steps.size(), PB.Steps.size());
        bool Diverge = false;
        for (size_t K = 0; K < N; ++K)
          if (PA.Steps[K] != PB.Steps[K])
            Diverge = true;
        EXPECT_TRUE(Diverge) << "nested mutation paths";
      }
  }
}

TEST(MutationTest, DeterministicGivenSeed) {
  Program P = parse(assignmentTemplates()[0].Source);
  Rng R1(7), R2(7);
  auto M1 = mutateProgram(P, 2, R1);
  auto M2 = mutateProgram(P, 2, R2);
  ASSERT_TRUE(M1 && M2);
  EXPECT_TRUE(M1->Mutated.equals(M2->Mutated));
}

//===----------------------------------------------------------------------===//
// Corpus generation
//===----------------------------------------------------------------------===//

TEST(GeneratorTest, TenProgrammerProfiles) {
  EXPECT_EQ(programmerProfiles().size(), 10u);
}

TEST(GeneratorTest, SmallCorpusSmoke) {
  CorpusOptions Opts;
  Opts.Scale = 0.25;
  Corpus C = generateCorpus(Opts);
  EXPECT_GT(C.Analyzed.size(), 20u);
  EXPECT_GE(C.TotalCollected, unsigned(C.Analyzed.size()));
  for (const CorpusFile &F : C.Analyzed) {
    EXPECT_GE(F.Programmer, 1);
    EXPECT_LE(F.Programmer, 10);
    EXPECT_GE(F.Assignment, 1);
    EXPECT_LE(F.Assignment, 5);
    EXPECT_GE(F.ClassSize, 1u);
    EXPECT_FALSE(F.Truths.empty());
  }
}

TEST(GeneratorTest, AnalyzedFilesAreIllTyped) {
  CorpusOptions Opts;
  Opts.Scale = 0.2;
  Corpus C = generateCorpus(Opts);
  int Checked = 0;
  for (const CorpusFile &F : C.Analyzed) {
    Program P = parse(F.Source);
    EXPECT_FALSE(typecheckProgram(P).ok()) << F.Source;
    if (++Checked >= 25)
      break;
  }
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  CorpusOptions Opts;
  Opts.Scale = 0.2;
  Corpus A = generateCorpus(Opts);
  Corpus B = generateCorpus(Opts);
  ASSERT_EQ(A.Analyzed.size(), B.Analyzed.size());
  for (size_t I = 0; I < A.Analyzed.size(); ++I)
    EXPECT_EQ(A.Analyzed[I].Source, B.Analyzed[I].Source);
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  CorpusOptions A, B;
  A.Scale = B.Scale = 0.2;
  B.Seed = 999;
  Corpus CA = generateCorpus(A);
  Corpus CB = generateCorpus(B);
  bool AnyDiff = CA.Analyzed.size() != CB.Analyzed.size();
  for (size_t I = 0; !AnyDiff && I < CA.Analyzed.size(); ++I)
    AnyDiff = CA.Analyzed[I].Source != CB.Analyzed[I].Source;
  EXPECT_TRUE(AnyDiff);
}

TEST(GeneratorTest, ClassSizesFormHeavyTail) {
  CorpusOptions Opts;
  Opts.Scale = 1.0;
  Corpus C = generateCorpus(Opts);
  // Most classes are small; at least one is larger (Figure 6's shape).
  EXPECT_GT(C.ClassSizes.count(1), 0u);
  uint64_t Bigger = 0;
  for (const auto &KV : C.ClassSizes.buckets())
    if (KV.first >= 3)
      Bigger += KV.second;
  EXPECT_GT(Bigger, 0u);
  // Singletons dominate larger classes.
  EXPECT_GT(C.ClassSizes.count(1), Bigger);
}

TEST(GeneratorTest, EveryProgrammerAndAssignmentRepresented) {
  CorpusOptions Opts;
  Opts.Scale = 1.0;
  Corpus C = generateCorpus(Opts);
  std::set<int> Programmers, Assignments;
  for (const CorpusFile &F : C.Analyzed) {
    Programmers.insert(F.Programmer);
    Assignments.insert(F.Assignment);
  }
  EXPECT_EQ(Programmers.size(), 10u);
  EXPECT_EQ(Assignments.size(), 5u);
}

} // namespace
