//===- InferTest.cpp - Tests for mini-Caml type inference ------------------==//
//
// Beyond checking that well-typed programs pass and ill-typed programs
// fail, these tests pin down the *blame behavior* on the paper's running
// examples: the whole reproduction hinges on the conventional checker
// reporting the same (misleading) locations OCaml reported in 2007.
//
//===----------------------------------------------------------------------===//

#include "minicaml/Infer.h"
#include "minicaml/Parser.h"

#include <gtest/gtest.h>

using namespace seminal;
using namespace seminal::caml;

namespace {

Program parse(const std::string &Source) {
  ParseResult R = parseProgram(Source);
  EXPECT_TRUE(R.ok()) << (R.Error ? R.Error->str() : "") << "\n" << Source;
  return R.ok() ? std::move(*R.Prog) : Program();
}

TypecheckResult check(const std::string &Source) {
  Program P = parse(Source);
  return typecheckProgram(P);
}

/// The source text the error's span covers.
std::string blamed(const std::string &Source, const TypecheckResult &R) {
  if (!R.Error || !R.Error->Span.isValid())
    return "<none>";
  const SourceSpan &S = R.Error->Span;
  return Source.substr(S.Begin.Offset, S.EndOffset - S.Begin.Offset);
}

/// Type of the binding \p Name in a successful run.
std::string typeOf(const TypecheckResult &R, const std::string &Name) {
  for (const auto &[N, T] : R.TopLevelTypes)
    if (N == Name)
      return T;
  return "<missing>";
}

//===----------------------------------------------------------------------===//
// Well-typed programs
//===----------------------------------------------------------------------===//

TEST(InferOkTest, Literals) {
  TypecheckResult R = check("let a = 1\nlet b = true\nlet c = \"s\"\n"
                            "let d = ()");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "a"), "int");
  EXPECT_EQ(typeOf(R, "b"), "bool");
  EXPECT_EQ(typeOf(R, "c"), "string");
  EXPECT_EQ(typeOf(R, "d"), "unit");
}

TEST(InferOkTest, FunctionsAndApplication) {
  TypecheckResult R = check("let add x y = x + y\nlet five = add 2 3");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "add"), "int -> int -> int");
  EXPECT_EQ(typeOf(R, "five"), "int");
}

TEST(InferOkTest, PolymorphicIdentity) {
  TypecheckResult R = check("let id x = x\nlet a = id 1\nlet b = id \"s\"");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "id"), "'a -> 'a");
  EXPECT_EQ(typeOf(R, "a"), "int");
  EXPECT_EQ(typeOf(R, "b"), "string");
}

TEST(InferOkTest, LetPolymorphismInsideExpression) {
  TypecheckResult R =
      check("let p = let id = fun x -> x in (id 1, id \"s\")");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "p"), "int * string");
}

TEST(InferOkTest, ValueRestrictionBlocksGeneralization) {
  // `ref []` is not a syntactic value, so its type may not generalize;
  // using it at two element types must fail.
  TypecheckResult R = check("let r = ref []\n"
                            "let a = r := [1]\n"
                            "let b = r := [\"s\"]");
  EXPECT_FALSE(R.ok());
}

TEST(InferOkTest, StdlibListFunctions) {
  TypecheckResult R =
      check("let xs = List.map (fun x -> x + 1) [1; 2; 3]\n"
            "let n = List.length xs\n"
            "let p = List.combine [1] [\"a\"]\n"
            "let f = List.filter (fun x -> x > 2) xs");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "xs"), "int list");
  EXPECT_EQ(typeOf(R, "p"), "(int * string) list");
}

TEST(InferOkTest, MatchOnList) {
  TypecheckResult R = check("let hd xs = match xs with\n"
                            "  | [] -> 0\n"
                            "  | x :: _ -> x");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "hd"), "int list -> int");
}

TEST(InferOkTest, RecursionThroughRec) {
  TypecheckResult R =
      check("let rec len xs = match xs with [] -> 0 | _ :: t -> 1 + len t");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "len"), "'a list -> int");
}

TEST(InferOkTest, UserVariantType) {
  TypecheckResult R =
      check("type shape = Circle of int | Square of int | Dot\n"
            "let area s = match s with\n"
            "  | Circle r -> 3 * r * r\n"
            "  | Square w -> w * w\n"
            "  | Dot -> 0");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "area"), "shape -> int");
}

TEST(InferOkTest, ParameterizedVariant) {
  TypecheckResult R =
      check("type 'a tree = Leaf | Node of 'a tree * 'a * 'a tree\n"
            "let rec size t = match t with\n"
            "  | Leaf -> 0\n"
            "  | Node (l, _, r) -> 1 + size l + size r\n"
            "let t = Node (Leaf, 3, Leaf)");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "size"), "'a tree -> int");
  EXPECT_EQ(typeOf(R, "t"), "int tree");
}

TEST(InferOkTest, RecursiveVariantLikeFigure9) {
  TypecheckResult R = check("type move = For of int * move list | Stop\n"
                            "let m = For (2, [Stop; Stop])");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "m"), "move");
}

TEST(InferOkTest, RecordsAndMutableFields) {
  TypecheckResult R = check("type counter = { mutable count : int; id : string }\n"
                            "let c = { count = 0; id = \"c\" }\n"
                            "let bump () = c.count <- c.count + 1\n"
                            "let name = c.id");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "c"), "counter");
  EXPECT_EQ(typeOf(R, "name"), "string");
}

TEST(InferOkTest, References) {
  TypecheckResult R = check("let r = ref 0\n"
                            "let bump () = r := !r + 1");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "r"), "int ref");
}

TEST(InferOkTest, ExceptionsAndRaise) {
  TypecheckResult R = check("exception Bad of string\n"
                            "let f x = if x < 0 then raise (Bad \"neg\") else x");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "f"), "int -> int");
}

TEST(InferOkTest, RaiseHasAnyType) {
  // `raise Foo` must fit every context: the property the wildcard relies
  // on (Section 2.1, footnote 2).
  TypecheckResult R = check("let a = 1 + raise Foo\n"
                            "let b = if raise Foo then 1 else 2\n"
                            "let c = List.map (raise Foo) [1]\n"
                            "let d = (raise Foo) 1 2 3");
  EXPECT_TRUE(R.ok()) << (R.Error ? R.Error->Message : "");
}

TEST(InferOkTest, SequenceLeftIsUnconstrained) {
  // OCaml warns but does not error when the left of `;` is non-unit; the
  // paper's adapt encoding `(e; raise Foo)` depends on this.
  TypecheckResult R = check("let x = \"side effect?\"; 42");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "x"), "int");
}

TEST(InferOkTest, PolymorphicComparisonOperators) {
  TypecheckResult R = check("let f a b = a = b\nlet g = f 1 2\n"
                            "let h = f \"x\" \"y\"");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "f"), "'a -> 'a -> bool");
}

TEST(InferOkTest, OptionType) {
  TypecheckResult R = check("let f o = match o with Some v -> v | None -> 0");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
  EXPECT_EQ(typeOf(R, "f"), "int option -> int");
}

TEST(InferOkTest, TupleBindingGeneralizes) {
  TypecheckResult R = check("let (f, g) = ((fun x -> x), (fun y -> y))\n"
                            "let a = f 1\nlet b = g \"s\"");
  ASSERT_TRUE(R.ok()) << R.Error->Message;
}

//===----------------------------------------------------------------------===//
// Ill-typed programs: error kinds
//===----------------------------------------------------------------------===//

TEST(InferErrTest, UnboundValue) {
  std::string Src = "let x = missing + 1";
  TypecheckResult R = check(Src);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Error->TheKind, TypeError::Kind::Unbound);
  EXPECT_EQ(R.Error->Name, "missing");
  EXPECT_EQ(blamed(Src, R), "missing");
}

TEST(InferErrTest, SimpleMismatch) {
  std::string Src = "let x = 1 + \"two\"";
  TypecheckResult R = check(Src);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Error->TheKind, TypeError::Kind::Mismatch);
  EXPECT_EQ(blamed(Src, R), "\"two\"");
  EXPECT_EQ(R.Error->ActualType, "string");
  EXPECT_EQ(R.Error->ExpectedType, "int");
}

TEST(InferErrTest, NotAFunction) {
  std::string Src = "let x = 3 4";
  TypecheckResult R = check(Src);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Error->TheKind, TypeError::Kind::NotFunction);
}

TEST(InferErrTest, TooManyArguments) {
  std::string Src = "let f x = x + 1\nlet y = f 1 2";
  TypecheckResult R = check(Src);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Error->TheKind, TypeError::Kind::TooManyArgs);
}

TEST(InferErrTest, BranchMismatchBlamesSecondBranch) {
  std::string Src = "let x = if true then 1 else \"s\"";
  TypecheckResult R = check(Src);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(blamed(Src, R), "\"s\"");
}

TEST(InferErrTest, MatchArmMismatchBlamesLaterArm) {
  std::string Src = "let f x = match x with 0 -> 1 | _ -> \"s\"";
  TypecheckResult R = check(Src);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(blamed(Src, R), "\"s\"");
}

TEST(InferErrTest, PatternMismatch) {
  std::string Src = "let f x = match x with 0 -> 1 | \"s\" -> 2";
  TypecheckResult R = check(Src);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Error->TheKind, TypeError::Kind::PatternMismatch);
  EXPECT_EQ(blamed(Src, R), "\"s\"");
}

TEST(InferErrTest, UnboundConstructor) {
  TypecheckResult R = check("let x = Nope 3");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Error->TheKind, TypeError::Kind::Unbound);
}

TEST(InferErrTest, ConstructorArity) {
  TypecheckResult R = check("let x = Some");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Error->TheKind, TypeError::Kind::ConstructorArity);
}

TEST(InferErrTest, ImmutableFieldAssignment) {
  TypecheckResult R = check("type p = { x : int }\n"
                            "let f r = r.x <- 3");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Error->TheKind, TypeError::Kind::NotMutable);
}

TEST(InferErrTest, MissingRecordField) {
  TypecheckResult R = check("type p = { x : int; y : int }\n"
                            "let v = { x = 1 }");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Error->TheKind, TypeError::Kind::RecordShape);
}

TEST(InferErrTest, OccursCheck) {
  TypecheckResult R = check("let f x = x x");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Error->TheKind, TypeError::Kind::Cyclic);
}

TEST(InferErrTest, MissingRecMakesSelfCallUnbound) {
  TypecheckResult R =
      check("let len xs = match xs with [] -> 0 | _ :: t -> 1 + len t");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Error->TheKind, TypeError::Kind::Unbound);
  EXPECT_EQ(R.Error->Name, "len");
}

TEST(InferErrTest, FirstErrorWins) {
  // Two independent errors: only the first (textually reached) reports.
  std::string Src = "let x = 3 + true\nlet y = 4 + \"hi\"";
  TypecheckResult R = check(Src);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(blamed(Src, R), "true");
}

//===----------------------------------------------------------------------===//
// Paper blame behavior (Figures 2, 8, 9)
//===----------------------------------------------------------------------===//

TEST(InferPaperTest, Figure2BlamesXPlusY) {
  std::string Src =
      "let map2 f aList bList =\n"
      "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
      "let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n"
      "let ans = List.filter (fun x -> x == 0) lst\n";
  TypecheckResult R = check(Src);
  ASSERT_FALSE(R.ok());
  // The checker must report the addition, not the tupled parameter: the
  // int result of x + y is used where the second curried argument type
  // 'a -> 'b is expected.
  EXPECT_EQ(blamed(Src, R), "x + y");
  EXPECT_EQ(R.Error->ActualType, "int");
  EXPECT_NE(R.Error->ExpectedType.find("->"), std::string::npos);
}

TEST(InferPaperTest, Figure2FixedVersionChecks) {
  TypecheckResult R = check(
      "let map2 f aList bList =\n"
      "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
      "let lst = map2 (fun x y -> x + y) [1;2;3] [4;5;6]\n"
      "let ans = List.filter (fun x -> x == 0) lst\n");
  EXPECT_TRUE(R.ok()) << (R.Error ? R.Error->Message : "");
}

TEST(InferPaperTest, Figure8BlamesSwappedArgument) {
  std::string Src = "let add str lst = if List.mem str lst then lst\n"
                    "                  else str :: lst\n"
                    "let vList1 = [\"a\"; \"b\"]\n"
                    "let s = \"c\"\n"
                    "let out = add vList1 s\n";
  TypecheckResult R = check(Src);
  ASSERT_FALSE(R.ok());
  // Blame lands on `s` with the bewildering nested list type.
  EXPECT_EQ(blamed(Src, R), "s");
  EXPECT_EQ(R.Error->ActualType, "string");
  EXPECT_EQ(R.Error->ExpectedType, "string list list");
}

TEST(InferPaperTest, Figure9BlamesCallResultNotMissingArg) {
  std::string Src =
      "type move = For of int * move list | Stop\n"
      "let rec loop movelist acc =\n"
      "  match movelist with\n"
      "    [] -> acc\n"
      "  | For (moves, lst) :: tl ->\n"
      "      let rec finalLst index searchLst =\n"
      "        if index = moves - 1 then []\n"
      "        else (List.nth searchLst) :: finalLst (index + 1) searchLst\n"
      "      in loop (finalLst 0 lst) acc\n"
      "  | Stop :: tl -> loop tl acc\n";
  TypecheckResult R = check(Src);
  ASSERT_FALSE(R.ok());
  // The partial application inside finalLst is NOT an error; the checker
  // only notices at the outer call where a move list is required.
  EXPECT_EQ(blamed(Src, R), "(finalLst 0 lst)");
  EXPECT_NE(R.Error->ActualType.find("int -> move"), std::string::npos)
      << R.Error->ActualType;
}

TEST(InferPaperTest, QueryNodeReportsType) {
  Program P = parse("let f = fun x y -> x + y");
  TypecheckOptions Opts;
  Opts.QueryNode = P.Decls[0]->Rhs.get();
  TypecheckResult R = typecheckProgram(P, Opts);
  ASSERT_TRUE(R.ok());
  ASSERT_TRUE(R.QueriedType.has_value());
  EXPECT_EQ(*R.QueriedType, "int -> int -> int");
}

//===----------------------------------------------------------------------===//
// Property-style sweeps
//===----------------------------------------------------------------------===//

struct WellTypedCase {
  const char *Source;
};

class WellTypedSweep : public ::testing::TestWithParam<const char *> {};

TEST_P(WellTypedSweep, Typechecks) {
  TypecheckResult R = check(GetParam());
  EXPECT_TRUE(R.ok()) << (R.Error ? R.Error->Message : "") << "\n"
                      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Programs, WellTypedSweep,
    ::testing::Values(
        "let compose f g x = f (g x)",
        "let twice f x = f (f x)",
        "let rec fact n = if n = 0 then 1 else n * fact (n - 1)",
        "let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)",
        "let rec map f xs = match xs with [] -> [] | x :: t -> f x :: map f t",
        "let rec append a b = match a with [] -> b | x :: t -> x :: append t b",
        "let swap (a, b) = (b, a)",
        "let curry f a b = f (a, b)",
        "let uncurry f (a, b) = f a b",
        "let apply_all fs x = List.map (fun f -> f x) fs",
        "let sum xs = List.fold_left (fun a b -> a + b) 0 xs",
        "let join xs = String.concat \", \" xs",
        "let count = ref 0\nlet tick () = count := !count + 1",
        "let rec even n = if n = 0 then true else not (even (n - 1))",
        "type color = Red | Green | Blue\n"
        "let show c = match c with Red -> \"r\" | Green -> \"g\" | Blue -> \"b\"",
        "let pairs = List.combine [1; 2] [true; false]",
        "let firsts xs = List.map fst xs",
        "let safe_hd xs = match xs with [] -> None | x :: _ -> Some x"));

class IllTypedSweep : public ::testing::TestWithParam<const char *> {};

TEST_P(IllTypedSweep, FailsToTypecheck) {
  TypecheckResult R = check(GetParam());
  EXPECT_FALSE(R.ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Programs, IllTypedSweep,
    ::testing::Values(
        "let x = 1 + true",
        "let x = \"a\" ^ 1",
        "let x = [1; \"two\"]",
        "let x = (fun (a, b) -> a + b) 1 2",
        "let x = (fun a b -> a + b) (1, 2)",
        "let f g = g 1 && g \"s\"", // needs rank-2 polymorphism
        "let x = if 1 then 2 else 3",
        "let x = match [1] with [] -> 0 | x :: _ -> x ^ \"\"",
        "let x = List.map 3 [1]",
        "let x = List.nth 0 [1]",
        "let x = 1 :: 2",
        "let x = [1] @ [\"s\"]",
        "let x = !3",
        "let x = not 1",
        "let x = Some 1 = Some \"s\"",
        "let f x = x.nofield"));

} // namespace
