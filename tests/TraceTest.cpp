//===- TraceTest.cpp - Tests for the search-trace subsystem ---------------==//
//
// The trace subsystem's two contracts (DESIGN.md section 8):
//
//   1. Observational purity: attaching a TraceSink/Metrics changes
//      nothing about the search -- suggestions, logical-call counts, and
//      ranking are byte-identical with tracing on or off.
//   2. Completeness: every logical oracle call is one OracleCall span
//      carrying layer / verdict / cache_hit attributes, in every
//      acceleration configuration including the parallel batch path.
//
// Plus exporter well-formedness (Chrome trace JSON, JSONL) and the
// mechanics the instrumentation relies on (parenting, layer scopes,
// disabled-span inertness).
//
//===----------------------------------------------------------------------==//

#include "JsonTestUtil.h"
#include "core/Seminal.h"
#include "minicaml/Printer.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <sstream>

using namespace seminal;

namespace {

/// The Figure 2 program: deep enough to exercise localization, decl
/// changes, adaptation, constructive candidates, and type queries.
const char *Fig2 =
    "let map2 f aList bList =\n"
    "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
    "let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n"
    "let ans = List.filter (fun x -> x == 0) lst\n";

/// Two independent errors: forces triage.
const char *TwoErrors = "let go y =\n"
                        "  let a = 3 + true in\n"
                        "  let b = 4 + \"hi\" in\n"
                        "  y + 1";

std::string suggestionDigest(const SeminalReport &R) {
  std::string Out;
  for (const Suggestion &S : R.Suggestions) {
    Out += std::to_string(int(S.Kind)) + "/" + S.Path.str() + "/";
    if (S.Original)
      Out += caml::printExpr(*S.Original);
    Out += "=>";
    if (S.Replacement)
      Out += caml::printExpr(*S.Replacement);
    Out += "/" + S.Description + "/" + S.ContextAfter + "/" +
           (S.ReplacementType ? *S.ReplacementType : "<none>") + ";";
  }
  return Out;
}

const TraceAttr *findAttr(const TraceEvent &E, const char *Key) {
  for (const TraceAttr &A : E.Attrs)
    if (A.Key == Key)
      return &A;
  return nullptr;
}

SeminalOptions tracedOptions(TraceSink *Sink, Metrics *M,
                             bool Parallel = false) {
  SeminalOptions Opts;
  Opts.Search.Trace = Sink;
  Opts.Search.Metric = M;
  if (Parallel) {
    Opts.Search.Accel.ParallelBatch = true;
    Opts.Search.Accel.Threads = 4;
    Opts.Search.Accel.MinParallelItems = 2;
  }
  return Opts;
}

} // namespace

//===----------------------------------------------------------------------===//
// Contract 1: tracing is observational only
//===----------------------------------------------------------------------===//

TEST(TracePurityTest, SuggestionsIdenticalWithTracingOnAndOff) {
  for (const char *Source : {Fig2, TwoErrors}) {
    SeminalReport Plain = runSeminalOnSource(Source);

    TraceSink Sink;
    Metrics M;
    SeminalReport Traced =
        runSeminalOnSource(Source, tracedOptions(&Sink, &M));

    EXPECT_EQ(suggestionDigest(Plain), suggestionDigest(Traced));
    EXPECT_EQ(Plain.OracleCalls, Traced.OracleCalls);
    EXPECT_EQ(Plain.InferenceRuns, Traced.InferenceRuns);
    EXPECT_EQ(Plain.bestMessage(), Traced.bestMessage());
    EXPECT_GT(Sink.eventCount(), 0u);
  }
}

TEST(TracePurityTest, SuggestionsIdenticalUnderParallelBatchTracing) {
  SeminalReport Plain = runSeminalOnSource(Fig2);
  TraceSink Sink;
  SeminalReport Traced = runSeminalOnSource(
      Fig2, tracedOptions(&Sink, nullptr, /*Parallel=*/true));
  EXPECT_EQ(suggestionDigest(Plain), suggestionDigest(Traced));
  EXPECT_EQ(Plain.OracleCalls, Traced.OracleCalls);
}

//===----------------------------------------------------------------------===//
// Contract 2: one OracleCall span per logical call, fully attributed
//===----------------------------------------------------------------------===//

TEST(TraceCompletenessTest, OneOracleCallSpanPerLogicalCall) {
  TraceSink Sink;
  SeminalReport R = runSeminalOnSource(Fig2, tracedOptions(&Sink, nullptr));

  uint64_t OracleSpans = 0;
  for (const TraceEvent &E : Sink.snapshot())
    if (E.Kind == SpanKind::OracleCall)
      ++OracleSpans;
  EXPECT_EQ(OracleSpans, R.OracleCalls);
}

TEST(TraceCompletenessTest, OneSpanPerCallUnderParallelBatch) {
  TraceSink Sink;
  SeminalReport R = runSeminalOnSource(
      Fig2, tracedOptions(&Sink, nullptr, /*Parallel=*/true));

  uint64_t OracleSpans = 0;
  for (const TraceEvent &E : Sink.snapshot())
    if (E.Kind == SpanKind::OracleCall)
      ++OracleSpans;
  EXPECT_EQ(OracleSpans, R.OracleCalls);
}

TEST(TraceCompletenessTest, EveryOracleSpanCarriesLayerVerdictCacheHit) {
  TraceSink Sink;
  runSeminalOnSource(TwoErrors, tracedOptions(&Sink, nullptr));

  size_t Checked = 0;
  for (const TraceEvent &E : Sink.snapshot()) {
    if (E.Kind != SpanKind::OracleCall)
      continue;
    ++Checked;
    const TraceAttr *Layer = findAttr(E, "layer");
    ASSERT_NE(Layer, nullptr) << E.Name;
    EXPECT_EQ(Layer->T, TraceAttr::Type::String);
    EXPECT_FALSE(Layer->Str.empty());
    EXPECT_NE(Layer->Str, "unattributed")
        << "oracle call from an unlabeled search site";
    const TraceAttr *Verdict = findAttr(E, "verdict");
    ASSERT_NE(Verdict, nullptr);
    EXPECT_EQ(Verdict->T, TraceAttr::Type::Bool);
    const TraceAttr *CacheHit = findAttr(E, "cache_hit");
    ASSERT_NE(CacheHit, nullptr);
    EXPECT_EQ(CacheHit->T, TraceAttr::Type::Bool);
    const TraceAttr *ServedBy = findAttr(E, "served_by");
    ASSERT_NE(ServedBy, nullptr);
    EXPECT_FALSE(ServedBy->Str.empty());
  }
  EXPECT_GT(Checked, 0u);
}

TEST(TraceCompletenessTest, TriageRunEmitsTriageSpansAndLayers) {
  TraceSink Sink;
  runSeminalOnSource(TwoErrors, tracedOptions(&Sink, nullptr));
  TraceSummary Sum = Sink.summarize();
  EXPECT_GT(Sum.SpansByKind["triage"], 0u);
  EXPECT_GT(Sum.SpansByKind["triage-phase"], 0u);
  EXPECT_GT(Sum.CallsByLayer["triage"], 0u);
  EXPECT_GT(Sum.CallsByLayer["localize"], 0u);
  EXPECT_GT(Sum.CallsByLayer["removal"], 0u);
}

TEST(TraceCompletenessTest, ReportSummaryMatchesEventStream) {
  TraceSink Sink;
  SeminalReport R = runSeminalOnSource(Fig2, tracedOptions(&Sink, nullptr));
  ASSERT_TRUE(R.Trace.has_value());
  EXPECT_EQ(R.Trace->OracleCallSpans, R.OracleCalls);
  EXPECT_EQ(R.Trace->Spans, Sink.eventCount());
  uint64_t LayerTotal = 0;
  for (const auto &KV : R.Trace->CallsByLayer)
    LayerTotal += KV.second;
  EXPECT_EQ(LayerTotal, R.Trace->OracleCallSpans);
  EXPECT_FALSE(R.Trace->render().empty());
}

//===----------------------------------------------------------------------===//
// Span mechanics
//===----------------------------------------------------------------------===//

TEST(TraceSpanTest, DisabledSpanIsInert) {
  TraceSpan Span(nullptr, SpanKind::OracleCall, "oracle.typecheck");
  EXPECT_FALSE(Span.enabled());
  EXPECT_EQ(Span.id(), 0u);
  // None of these may crash or allocate sink state.
  Span.attr("layer", "x");
  Span.attr("n", int64_t(1));
  Span.attr("flag", true);
  Span.attr("d", 2.0);
  Span.setParent(42);
  Span.finish();
}

TEST(TraceSpanTest, NestingParentsAutomatically) {
  TraceSink Sink;
  {
    TraceSpan Outer(&Sink, SpanKind::Search, "outer");
    {
      TraceSpan Inner(&Sink, SpanKind::NodeVisit, "inner");
      EXPECT_NE(Inner.id(), Outer.id());
    }
  }
  auto Events = Sink.snapshot();
  ASSERT_EQ(Events.size(), 2u);
  // Events record at finish: inner first.
  EXPECT_EQ(Events[0].Name, "inner");
  EXPECT_EQ(Events[0].Parent, Events[1].Id);
  EXPECT_EQ(Events[1].Parent, 0u);
  EXPECT_LE(Events[1].StartNs, Events[0].StartNs);
}

TEST(TraceSpanTest, ExplicitParentOverridesStack) {
  TraceSink Sink;
  uint64_t BatchId;
  {
    TraceSpan Batch(&Sink, SpanKind::OracleBatch, "batch");
    BatchId = Batch.id();
    TraceSpan Item(&Sink, SpanKind::OracleCall, "item");
    Item.setParent(BatchId);
  }
  auto Events = Sink.snapshot();
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0].Parent, BatchId);
}

TEST(TraceSpanTest, ParentIdsResolveWithinStream) {
  TraceSink Sink;
  runSeminalOnSource(TwoErrors, tracedOptions(&Sink, nullptr));
  auto Events = Sink.snapshot();
  std::set<uint64_t> Ids;
  for (const TraceEvent &E : Events)
    Ids.insert(E.Id);
  size_t Roots = 0;
  for (const TraceEvent &E : Events) {
    if (E.Parent == 0) {
      ++Roots;
      continue;
    }
    EXPECT_TRUE(Ids.count(E.Parent))
        << "span " << E.Id << " (" << E.Name << ") has dangling parent "
        << E.Parent;
  }
  EXPECT_GE(Roots, 1u);
}

TEST(TraceSpanTest, SequenceNumbersAreStrictlyIncreasing) {
  TraceSink Sink;
  runSeminalOnSource(Fig2,
                     tracedOptions(&Sink, nullptr, /*Parallel=*/true));
  auto Events = Sink.snapshot();
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_LT(Events[I - 1].Seq, Events[I].Seq);
}

TEST(TraceLayerScopeTest, NestsAndRestores) {
  EXPECT_STREQ(traceCurrentLayer(), "unattributed");
  {
    TraceLayerScope A("localize");
    EXPECT_STREQ(traceCurrentLayer(), "localize");
    {
      TraceLayerScope B("triage");
      EXPECT_STREQ(traceCurrentLayer(), "triage");
    }
    EXPECT_STREQ(traceCurrentLayer(), "localize");
  }
  EXPECT_STREQ(traceCurrentLayer(), "unattributed");
}

TEST(TraceSinkTest, ClearDropsEventsButKeepsIdsFresh) {
  TraceSink Sink;
  { TraceSpan S(&Sink, SpanKind::Other, "a"); }
  uint64_t FirstId = Sink.snapshot()[0].Id;
  Sink.clear();
  EXPECT_EQ(Sink.eventCount(), 0u);
  { TraceSpan S(&Sink, SpanKind::Other, "b"); }
  EXPECT_GT(Sink.snapshot()[0].Id, FirstId);
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

TEST(TraceExportTest, ChromeTraceIsValidJsonWithExpectedShape) {
  TraceSink Sink;
  runSeminalOnSource(Fig2, tracedOptions(&Sink, nullptr));

  std::ostringstream OS;
  Sink.writeChromeTrace(OS);
  std::string Out = OS.str();

  JsonValidator V(Out);
  EXPECT_TRUE(V.valid()) << Out.substr(0, 400);
  EXPECT_NE(Out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Out.find("\"oracle-call\""), std::string::npos);
  EXPECT_NE(Out.find("\"layer\""), std::string::npos);
  EXPECT_NE(Out.find("\"cache_hit\""), std::string::npos);
}

TEST(TraceExportTest, ChromeTraceEscapesAttributeStrings) {
  TraceSink Sink;
  {
    TraceSpan S(&Sink, SpanKind::Other, "escape");
    S.attr("payload", std::string("quote\" backslash\\ newline\n tab\t"));
  }
  std::ostringstream OS;
  Sink.writeChromeTrace(OS);
  JsonValidator V(OS.str());
  EXPECT_TRUE(V.valid()) << OS.str();
}

TEST(TraceExportTest, JsonlEveryLineIsValidJson) {
  TraceSink Sink;
  runSeminalOnSource(TwoErrors, tracedOptions(&Sink, nullptr));

  std::ostringstream OS;
  Sink.writeJsonl(OS);
  std::istringstream In(OS.str());
  std::string Line;
  size_t Lines = 0;
  while (std::getline(In, Line)) {
    ++Lines;
    JsonValidator V(Line);
    EXPECT_TRUE(V.valid()) << "line " << Lines << ": " << Line;
  }
  EXPECT_EQ(Lines, Sink.eventCount());
}

TEST(TraceExportTest, EmptySinkExportsAreValid) {
  TraceSink Sink;
  std::ostringstream Chrome, Jsonl;
  Sink.writeChromeTrace(Chrome);
  Sink.writeJsonl(Jsonl);
  JsonValidator V(Chrome.str());
  EXPECT_TRUE(V.valid());
  EXPECT_TRUE(Jsonl.str().empty());
}

//===----------------------------------------------------------------------===//
// Metrics integration
//===----------------------------------------------------------------------===//

TEST(TraceMetricsTest, SearchPopulatesWellKnownSeries) {
  Metrics M;
  runSeminalOnSource(Fig2, tracedOptions(nullptr, &M));
  EXPECT_GT(M.summary(metric::OracleLatencyUs).Count, 0u);
  EXPECT_GT(M.summary(metric::CandidatesPerNode).Count, 0u);
  MetricSummary Lat = M.summary(metric::OracleLatencyUs);
  EXPECT_GE(Lat.P95, Lat.P50);
  EXPECT_GE(Lat.Max, Lat.P95);
  EXPECT_FALSE(M.render().empty());
}

TEST(TraceMetricsTest, TriageRunObservesRemovalCounts) {
  Metrics M;
  runSeminalOnSource(TwoErrors, tracedOptions(nullptr, &M));
  EXPECT_GT(M.summary(metric::TriageRemovals).Count, 0u);
}
