//===- LexerTest.cpp - Tests for the mini-Caml lexer -----------------------==//

#include "minicaml/Lexer.h"

#include <gtest/gtest.h>

using namespace seminal;
using namespace seminal::caml;

namespace {

std::vector<Token> lex(const std::string &Source) {
  Lexer L(Source);
  return L.tokenize();
}

std::vector<Token::Kind> kinds(const std::string &Source) {
  std::vector<Token::Kind> Kinds;
  for (const Token &T : lex(Source))
    Kinds.push_back(T.TheKind);
  return Kinds;
}

using TK = Token::Kind;

TEST(LexerTest, EmptyInputYieldsEof) {
  auto Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TK::Eof));
}

TEST(LexerTest, IntegersAndIdentifiers) {
  auto Tokens = lex("let x1 = 42");
  ASSERT_EQ(Tokens.size(), 5u);
  EXPECT_TRUE(Tokens[0].is(TK::KwLet));
  EXPECT_TRUE(Tokens[1].is(TK::LowerIdent));
  EXPECT_EQ(Tokens[1].Text, "x1");
  EXPECT_TRUE(Tokens[2].is(TK::Eq));
  EXPECT_TRUE(Tokens[3].is(TK::IntLit));
  EXPECT_EQ(Tokens[3].IntValue, 42);
}

TEST(LexerTest, UpperIdentIsDistinguished) {
  auto Tokens = lex("Some x");
  EXPECT_TRUE(Tokens[0].is(TK::UpperIdent));
  EXPECT_TRUE(Tokens[1].is(TK::LowerIdent));
}

TEST(LexerTest, AllKeywords) {
  EXPECT_EQ(kinds("let rec in fun if then else match with type of "
                  "exception raise true false mutable not begin end"),
            (std::vector<TK>{TK::KwLet, TK::KwRec, TK::KwIn, TK::KwFun,
                             TK::KwIf, TK::KwThen, TK::KwElse, TK::KwMatch,
                             TK::KwWith, TK::KwType, TK::KwOf,
                             TK::KwException, TK::KwRaise, TK::KwTrue,
                             TK::KwFalse, TK::KwMutable, TK::KwNot,
                             TK::KwBegin, TK::KwEnd, TK::Eof}));
}

TEST(LexerTest, CompoundOperators) {
  EXPECT_EQ(kinds(":= :: -> <- <> <= >= == && || ;;"),
            (std::vector<TK>{TK::Assign, TK::ColonColon, TK::Arrow,
                             TK::LArrow, TK::NotEq, TK::Le, TK::Ge, TK::EqEq,
                             TK::AndAnd, TK::OrOr, TK::SemiSemi, TK::Eof}));
}

TEST(LexerTest, SingleCharOperators) {
  EXPECT_EQ(kinds("+ - * / ^ @ ! < > = ; , . | ( ) [ ] { } : '"),
            (std::vector<TK>{TK::Plus,     TK::Minus,  TK::Star,
                             TK::Slash,    TK::Caret,  TK::At,
                             TK::Bang,     TK::Lt,     TK::Gt,
                             TK::Eq,       TK::Semi,   TK::Comma,
                             TK::Dot,      TK::Bar,    TK::LParen,
                             TK::RParen,   TK::LBracket, TK::RBracket,
                             TK::LBrace,   TK::RBrace, TK::Colon,
                             TK::Quote,    TK::Eof}));
}

TEST(LexerTest, StringLiteralWithEscapes) {
  auto Tokens = lex(R"("a\n\"b\\")");
  ASSERT_GE(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TK::StringLit));
  EXPECT_EQ(Tokens[0].Text, "a\n\"b\\");
}

TEST(LexerTest, UnterminatedStringIsError) {
  auto Tokens = lex("\"abc");
  EXPECT_TRUE(Tokens[0].is(TK::Error));
}

TEST(LexerTest, CommentsAreSkipped) {
  auto Tokens = lex("1 (* comment *) 2");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].IntValue, 1);
  EXPECT_EQ(Tokens[1].IntValue, 2);
}

TEST(LexerTest, NestedComments) {
  auto Tokens = lex("1 (* a (* b *) c *) 2");
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[1].IntValue, 2);
}

TEST(LexerTest, UnterminatedCommentIsError) {
  auto Tokens = lex("1 (* oops");
  EXPECT_TRUE(Tokens[1].is(TK::Error));
}

TEST(LexerTest, UnderscoreAlone) {
  auto Tokens = lex("_ _x");
  EXPECT_TRUE(Tokens[0].is(TK::Underscore));
  EXPECT_TRUE(Tokens[1].is(TK::LowerIdent));
  EXPECT_EQ(Tokens[1].Text, "_x");
}

TEST(LexerTest, PrimedIdentifiers) {
  auto Tokens = lex("x' y''");
  EXPECT_EQ(Tokens[0].Text, "x'");
  EXPECT_EQ(Tokens[1].Text, "y''");
}

TEST(LexerTest, LocationsTrackLinesAndColumns) {
  auto Tokens = lex("let\n  x = 1");
  EXPECT_EQ(Tokens[0].Loc.Line, 1u);
  EXPECT_EQ(Tokens[1].Loc.Line, 2u);
  EXPECT_EQ(Tokens[1].Loc.Col, 3u);
}

TEST(LexerTest, SpansCoverTokenText) {
  auto Tokens = lex("hello world");
  EXPECT_EQ(Tokens[0].Loc.Offset, 0u);
  EXPECT_EQ(Tokens[0].EndOffset, 5u);
  EXPECT_EQ(Tokens[1].Loc.Offset, 6u);
  EXPECT_EQ(Tokens[1].EndOffset, 11u);
}

TEST(LexerTest, LoneAmpersandIsError) {
  auto Tokens = lex("a & b");
  EXPECT_TRUE(Tokens[1].is(TK::Error));
}

} // namespace
