//===- PrinterTest.cpp - Tests for the mini-Caml pretty printer -----------==//
//
// The printer's contract is that its output re-parses to a structurally
// identical tree (round-tripping), and that common forms print the way a
// Caml programmer writes them -- the paper's messages quote these strings.
//
//===----------------------------------------------------------------------===//

#include "minicaml/Parser.h"
#include "minicaml/Printer.h"

#include <gtest/gtest.h>

using namespace seminal;
using namespace seminal::caml;

namespace {

ExprPtr expr(const std::string &Source) {
  ParseExprResult R = parseExpression(Source);
  EXPECT_TRUE(R.ok()) << (R.Error ? R.Error->str() : "") << "\n" << Source;
  return std::move(R.E);
}

/// Parses, prints, re-parses, and checks structural equality.
void roundTrip(const std::string &Source) {
  ExprPtr E = expr(Source);
  ASSERT_NE(E, nullptr);
  std::string Printed = printExpr(*E);
  ParseExprResult R2 = parseExpression(Printed);
  ASSERT_TRUE(R2.ok()) << "printed text failed to re-parse: " << Printed;
  EXPECT_TRUE(E->equals(*R2.E))
      << "round trip changed structure:\n  in:  " << Source
      << "\n  out: " << Printed;
}

TEST(PrinterTest, SimpleForms) {
  EXPECT_EQ(printExpr(*expr("42")), "42");
  EXPECT_EQ(printExpr(*expr("x")), "x");
  EXPECT_EQ(printExpr(*expr("\"hi\"")), "\"hi\"");
  EXPECT_EQ(printExpr(*expr("()")), "()");
  EXPECT_EQ(printExpr(*expr("true")), "true");
}

TEST(PrinterTest, WildcardPrintsAsHole) {
  ExprPtr W = makeWildcard();
  EXPECT_EQ(printExpr(*W), "[[...]]");
}

TEST(PrinterTest, AdaptForm) {
  ExprPtr E = makeAdapt(makeVar("f"));
  EXPECT_EQ(printExpr(*E), "adapt f");
}

TEST(PrinterTest, ApplicationSpacing) {
  EXPECT_EQ(printExpr(*expr("f a b")), "f a b");
  EXPECT_EQ(printExpr(*expr("f (g a) b")), "f (g a) b");
}

TEST(PrinterTest, OperatorPrecedenceMinimalParens) {
  EXPECT_EQ(printExpr(*expr("1 + 2 * 3")), "1 + 2 * 3");
  EXPECT_EQ(printExpr(*expr("(1 + 2) * 3")), "(1 + 2) * 3");
  EXPECT_EQ(printExpr(*expr("a = b + 1")), "a = b + 1");
}

TEST(PrinterTest, FunForms) {
  EXPECT_EQ(printExpr(*expr("fun x y -> x + y")), "fun x y -> x + y");
  EXPECT_EQ(printExpr(*expr("fun (x, y) -> x + y")), "fun (x, y) -> x + y");
}

TEST(PrinterTest, PaperFigure2Message) {
  // The exact strings quoted in the paper's Figure 2 message.
  ExprPtr Bad = expr("fun (x, y) -> x + y");
  ExprPtr Good = expr("fun x y -> x + y");
  EXPECT_EQ(printExpr(*Bad), "fun (x, y) -> x + y");
  EXPECT_EQ(printExpr(*Good), "fun x y -> x + y");
}

TEST(PrinterTest, ListAndTuple) {
  EXPECT_EQ(printExpr(*expr("[1; 2; 3]")), "[1; 2; 3]");
  EXPECT_EQ(printExpr(*expr("(1, 2, 3)")), "(1, 2, 3)");
  EXPECT_EQ(printExpr(*expr("[1, 2, 3]")), "[(1, 2, 3)]");
}

TEST(PrinterTest, ConsChain) {
  EXPECT_EQ(printExpr(*expr("1 :: 2 :: []")), "1 :: 2 :: []");
}

TEST(PrinterTest, DeclForms) {
  ParseResult R = parseProgram("let rec f x = f x\ntype t = A of int | B\n"
                               "exception E of string");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(printDecl(*R.Prog->Decls[0]), "let rec f x = f x");
  EXPECT_EQ(printDecl(*R.Prog->Decls[1]), "type t = A of int | B");
  EXPECT_EQ(printDecl(*R.Prog->Decls[2]), "exception E of string");
}

TEST(PrinterTest, ParameterizedTypeArgumentsKeepParens) {
  // Regression: (string * int) list must not print as string * int list,
  // which reparses as string * (int list).
  ParseResult R = parseProgram(
      "type env = { mutable bindings : (string * int) list }");
  ASSERT_TRUE(R.ok());
  std::string Printed = printDecl(*R.Prog->Decls[0]);
  EXPECT_NE(Printed.find("(string * int) list"), std::string::npos)
      << Printed;
}

TEST(PrinterTest, RecordTypeDecl) {
  ParseResult R = parseProgram("type p = { mutable x : int; y : string }");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(printDecl(*R.Prog->Decls[0]),
            "type p = { mutable x : int; y : string }");
}

// Round-trip property over a corpus of representative expressions.
class PrinterRoundTripTest : public ::testing::TestWithParam<const char *> {};

TEST_P(PrinterRoundTripTest, ReparsesToSameTree) { roundTrip(GetParam()); }

INSTANTIATE_TEST_SUITE_P(
    Expressions, PrinterRoundTripTest,
    ::testing::Values(
        "1 + 2 * 3 - 4 / 5",
        "f a b c",
        "f (g (h x)) y",
        "fun x -> fun y -> x y",
        "fun (a, b) c -> a c b",
        "let x = 1 in let y = 2 in x + y",
        "let rec loop n = if n = 0 then [] else n :: loop (n - 1) in loop 5",
        "if a then b else if c then d else e",
        "if a then print_string \"x\"",
        "match xs with [] -> 0 | x :: rest -> x + 1",
        "match p with (0, y) -> y | (x, _) -> x",
        "match o with Some v -> v | None -> 0",
        "(1, (2, 3), [4; 5])",
        "[(1, 2); (3, 4)]",
        "[[1; 2]; [3]]",
        "a && b || not c",
        "x := !x + 1",
        "r.count <- r.count + 1",
        "{ x = 1; y = 2 }",
        "print_string \"a\"; print_string \"b\"; 3",
        "raise Not_found",
        "raise (Failure \"bad\")",
        "List.fold_left (fun acc x -> acc + x) 0 xs",
        "f [1, 2]",
        "- (x + 1)",
        "Some (1, 2)",
        "a ^ b ^ \"!\"",
        "xs @ ys @ zs",
        "let (a, b) = p in a + b",
        "fun _ -> 0"));

} // namespace
