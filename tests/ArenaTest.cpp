//===- ArenaTest.cpp - Hash-consed arena and overlay tests -----------------==//
//
// The arena's contract (DESIGN.md section 11) is that it is invisible:
// interning is structural (clones collapse to the same id), cached hashes
// equal minicaml/Hash of the materialized tree, overlays materialize to
// exactly what the old clone-and-replaceAtPath mutation produced, and a
// full search with the arena enabled is byte-identical to one without it.
// These tests pin each of those properties, including on random programs.
//
//===----------------------------------------------------------------------===//

#include "core/Change.h"
#include "core/Seminal.h"
#include "corpus/RandomAst.h"
#include "minicaml/Arena.h"
#include "minicaml/Hash.h"
#include "minicaml/Parser.h"
#include "minicaml/Printer.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

using namespace seminal;
using namespace seminal::caml;

namespace {

Program parse(const std::string &Source) {
  ParseResult R = parseProgram(Source);
  EXPECT_TRUE(R.ok()) << Source;
  return std::move(*R.Prog);
}

/// Sources chosen to exercise every expression and pattern kind the
/// parser can produce: literals, operators, tuples, lists, conses,
/// lambdas, match arms with guards, let-in, records, references,
/// sequencing, and non-let declarations.
const char *SampleSources[] = {
    "let map2 f aList bList =\n"
    "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
    "let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n",
    "let rec fold f acc l =\n"
    "  match l with\n"
    "    [] -> acc\n"
    "  | x :: rest -> fold f (f acc x) rest\n",
    "let f y =\n"
    "  let x = \"oops\" in\n"
    "  (x + 1) + (x + 2) + (x + 3) + (x + 4)\n",
    "let f x = print x; x + 1\nlet g = if true then f 1 else f 2\n",
    "let r = ref 0\nlet step () = r := !r + 1\n",
    "let f x y =\n"
    "  let n = List.length y in\n"
    "  match (x, y) with\n"
    "    (0, []) -> []\n"
    "  | (m, []) -> [m]\n"
    "  | (_, h :: _) -> [h + n]\n",
    "let s = \"a\" ^ \"b\"\nlet t = (1, true, ())\n",
};

/// Walks every expression node of a declaration's right-hand side,
/// preorder, calling \p Fn with each node's path steps.
void forEachExprNode(
    const Expr &Root,
    const std::function<void(const Expr &, const std::vector<unsigned> &)> &Fn) {
  std::vector<std::pair<const Expr *, std::vector<unsigned>>> Work;
  Work.push_back({&Root, {}});
  while (!Work.empty()) {
    auto [Node, Steps] = Work.back();
    Work.pop_back();
    Fn(*Node, Steps);
    for (unsigned C = 0; C < Node->numChildren(); ++C) {
      std::vector<unsigned> Child = Steps;
      Child.push_back(C);
      Work.push_back({Node->child(C), Child});
    }
  }
}

//===----------------------------------------------------------------------===//
// Interning: structural identity and cached hashes
//===----------------------------------------------------------------------===//

TEST(ArenaTest, InternCollapsesClones) {
  AstArena A;
  for (const char *Src : SampleSources) {
    Program P = parse(Src);
    for (const DeclPtr &D : P.Decls) {
      AstArena::DeclId Id = A.internDecl(*D);
      DeclPtr Clone = D->clone();
      EXPECT_EQ(A.internDecl(*Clone), Id) << printDecl(*D);
      if (!D->Rhs)
        continue;
      forEachExprNode(*D->Rhs, [&](const Expr &E, const std::vector<unsigned> &) {
        AstArena::ExprId EId = A.internExpr(E);
        ExprPtr EClone = E.clone();
        EXPECT_EQ(A.internExpr(*EClone), EId) << printExpr(E);
      });
    }
  }
  // Every second intern above was a clone of an already-interned tree.
  EXPECT_GT(A.stats().Hits, 0u);
  EXPECT_GT(A.stats().Nodes, 0u);
  EXPECT_GT(A.stats().Bytes, 0u);
}

TEST(ArenaTest, DistinctTreesGetDistinctIds) {
  AstArena A;
  Program P = parse("let a = 1 + 2\nlet b = 1 + 3\nlet c = 2 + 1\n");
  AstArena::DeclId IA = A.internDecl(*P.Decls[0]);
  AstArena::DeclId IB = A.internDecl(*P.Decls[1]);
  AstArena::DeclId IC = A.internDecl(*P.Decls[2]);
  EXPECT_NE(IA, IB);
  EXPECT_NE(IA, IC);
  EXPECT_NE(IB, IC);
}

TEST(ArenaTest, CachedHashesMatchTreeHashes) {
  AstArena A;
  for (const char *Src : SampleSources) {
    Program P = parse(Src);
    for (const DeclPtr &D : P.Decls) {
      EXPECT_EQ(A.declHash(A.internDecl(*D)), hashDecl(*D)) << printDecl(*D);
      if (!D->Rhs)
        continue;
      forEachExprNode(*D->Rhs, [&](const Expr &E, const std::vector<unsigned> &) {
        EXPECT_EQ(A.exprHash(A.internExpr(E)), hashExpr(E)) << printExpr(E);
      });
    }
  }
}

TEST(ArenaTest, RandomTreesInternAndHashConsistently) {
  for (int Round = 0; Round < 40; ++Round) {
    Rng R(uint64_t(Round) * 9176 + 3);
    AstArena A;
    ExprPtr E = randomExpr(R, 5);
    AstArena::ExprId Id = A.internExpr(*E);
    EXPECT_EQ(A.internExpr(*E->clone()), Id);
    EXPECT_EQ(A.exprHash(Id), hashExpr(*E));
    PatternPtr Pat = randomPattern(R, 4);
    AstArena::PatternId PId = A.internPattern(*Pat);
    EXPECT_EQ(A.internPattern(*Pat->clone()), PId);
  }
}

//===----------------------------------------------------------------------===//
// Materialization round-trips
//===----------------------------------------------------------------------===//

TEST(ArenaTest, MaterializeRoundTripsByteForByte) {
  AstArena A;
  for (const char *Src : SampleSources) {
    Program P = parse(Src);
    for (const DeclPtr &D : P.Decls) {
      DeclPtr Back = A.materializeDecl(A.internDecl(*D));
      ASSERT_TRUE(Back);
      EXPECT_TRUE(Back->equals(*D)) << printDecl(*D);
      EXPECT_EQ(printDecl(*Back), printDecl(*D));
      EXPECT_EQ(hashDecl(*Back), hashDecl(*D));
    }
  }
}

TEST(ArenaTest, ExprChildrenFollowAstLayout) {
  AstArena A;
  Program P = parse("let x = (1 + 2, f 3 4)\n");
  const Expr &Rhs = *P.Decls[0]->Rhs;
  AstArena::ExprId Id = A.internExpr(Rhs);
  const std::vector<AstArena::ExprId> &Kids = A.exprChildren(Id);
  ASSERT_EQ(Kids.size(), Rhs.numChildren());
  for (unsigned C = 0; C < Rhs.numChildren(); ++C) {
    EXPECT_EQ(Kids[C], A.internExpr(*Rhs.child(C)));
    EXPECT_EQ(A.exprKind(Kids[C]), Rhs.child(C)->kind());
  }
}

//===----------------------------------------------------------------------===//
// Overlays vs the old deep-copy mutation
//===----------------------------------------------------------------------===//

// For every node of every sample declaration, building the overlay
// "replace this node with a fresh literal" must materialize to exactly
// the tree the pre-arena pipeline built by cloning the program and
// calling replaceAtPath on the copy.
TEST(ArenaTest, OverlayEqualsCloneAndReplace) {
  AstArena A;
  for (const char *Src : SampleSources) {
    Program P = parse(Src);
    for (unsigned DI = 0; DI < P.Decls.size(); ++DI) {
      const Decl &D = *P.Decls[DI];
      if (D.kind() != Decl::Kind::Let || !D.Rhs)
        continue;
      AstArena::DeclId Base = A.internDecl(D);
      forEachExprNode(
          *D.Rhs, [&](const Expr &, const std::vector<unsigned> &Steps) {
            ExprPtr Repl = makeIntLit(42);
            AstArena::ExprId ReplId = A.internExpr(*Repl);
            AstArena::DeclId Over = A.overlayDecl(Base, Steps, ReplId);

            Program Copy = P.clone();
            NodePath Path(DI);
            Path.Steps = Steps;
            replaceAtPath(Copy, Path, std::move(Repl));
            const Decl &Expected = *Copy.Decls[DI];

            DeclPtr Got = A.materializeDecl(Over);
            ASSERT_TRUE(Got);
            EXPECT_TRUE(Got->equals(Expected)) << printDecl(Expected);
            EXPECT_EQ(printDecl(*Got), printDecl(Expected));
            EXPECT_EQ(A.declHash(Over), hashDecl(Expected));
          });
    }
  }
}

TEST(ArenaTest, NoOpOverlayReturnsBaseId) {
  AstArena A;
  Program P = parse("let f x = (x + 1) * 2\n");
  const Decl &D = *P.Decls[0];
  AstArena::DeclId Base = A.internDecl(D);
  forEachExprNode(*D.Rhs, [&](const Expr &E, const std::vector<unsigned> &Steps) {
    // Replacing a subtree with itself must collapse to the base id: this
    // is what lets the oracle detect no-op candidates by comparing ints.
    EXPECT_EQ(A.overlayDecl(Base, Steps, A.internExpr(E)), Base);
  });
}

TEST(ArenaTest, OverlaysWithSameResultCollapse) {
  AstArena A;
  Program P = parse("let y = 1 + 1\n");
  AstArena::DeclId Base = A.internDecl(*P.Decls[0]);
  // Replacing either addend with the other's value yields the same tree,
  // so the two overlay ids must be equal (wave-level dedup relies on it).
  AstArena::ExprId One = A.internExpr(*makeIntLit(1));
  AstArena::DeclId L = A.overlayDecl(Base, {0}, One);
  AstArena::DeclId R = A.overlayDecl(Base, {1}, One);
  EXPECT_EQ(L, R);
  EXPECT_EQ(L, Base); // ... and both are the unchanged tree here.
}

//===----------------------------------------------------------------------===//
// LazyProgram: deferred materialization equals the eager program
//===----------------------------------------------------------------------===//

TEST(ArenaTest, LazyProgramMaterializesToEagerProgram) {
  auto A = std::make_shared<AstArena>();
  Program P = parse(SampleSources[0]);
  std::vector<AstArena::DeclId> Ids;
  for (const DeclPtr &D : P.Decls)
    Ids.push_back(A->internDecl(*D));

  LazyProgram Lazy(A, std::move(Ids));
  const Program &Got = Lazy;
  EXPECT_TRUE(Got.equals(P));
  EXPECT_EQ(printProgram(Got), printProgram(P));
  EXPECT_EQ(hashProgram(Got), hashProgram(P));

  LazyProgram Eager(P.clone());
  EXPECT_EQ(printProgram(Eager), printProgram(Lazy));
}

//===----------------------------------------------------------------------===//
// Whole-search identity: arena on vs off
//===----------------------------------------------------------------------===//

/// Byte-exact fingerprint of a ranked report (mirrors AccelTest's).
std::string fingerprint(const SeminalReport &R) {
  std::string Out;
  Out += "typechecks=" + std::to_string(R.InputTypechecks);
  Out += " failing=" +
         (R.FailingDeclIndex ? std::to_string(*R.FailingDeclIndex)
                             : std::string("none"));
  Out += " calls=" + std::to_string(R.OracleCalls);
  Out += " budget=" + std::to_string(R.BudgetExhausted);
  Out += "\n";
  for (const Suggestion &S : R.Suggestions) {
    Out += "[" + std::to_string(int(S.Kind)) + "/" + S.Path.str() + "/p" +
           std::to_string(S.Priority) + "] ";
    if (S.Original)
      Out += printExpr(*S.Original);
    Out += " => ";
    if (S.Replacement)
      Out += printExpr(*S.Replacement);
    Out += " :: " + S.Description;
    Out += " :: ctx " + S.ContextAfter;
    Out += " :: " + std::to_string(hashProgram(S.Modified));
    Out += "\n";
  }
  return Out;
}

SeminalOptions withArena(bool Arena, bool ParallelBatch = false) {
  SeminalOptions Opts;
  Opts.Search.Accel.Arena = Arena;
  Opts.Search.Accel.ParallelBatch = ParallelBatch;
  Opts.Search.Accel.Threads = ParallelBatch ? 4 : 0;
  if (ParallelBatch)
    Opts.Search.Accel.MinParallelItems = 1;
  return Opts;
}

TEST(ArenaIdentityTest, PaperExamplesMatchWithArenaOff) {
  const char *Sources[] = {
      "let map2 f aList bList =\n"
      "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
      "let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n"
      "let ans = List.filter (fun x -> x == 0) lst\n",
      "let e1 x = x ^ \"!\"\nlet e2 = \"s\"\nlet t = if e1 e2 then 1 else 2\n",
      "let f x = print x; x + 1\n",
      "let go y =\n"
      "  let x = 3 + true in\n"
      "  let z = y + 1 in\n"
      "  let w = 4 + \"hi\" in\n"
      "  z\n",
      "let f (x, y) = x + y\nlet z = f 1 2",
  };
  for (const char *Src : Sources) {
    SeminalReport Off = runSeminalOnSource(Src, withArena(false));
    SeminalReport On = runSeminalOnSource(Src, withArena(true));
    EXPECT_EQ(fingerprint(On), fingerprint(Off)) << Src;
    EXPECT_EQ(On.OracleCalls, Off.OracleCalls) << Src;
    EXPECT_EQ(On.InferenceRuns, Off.InferenceRuns) << Src;
    // The arena actually engaged: nodes were interned and re-used.
    EXPECT_GT(On.Accel.ArenaNodes, 0u) << Src;
    EXPECT_GT(On.Accel.ArenaHits, 0u) << Src;
    EXPECT_EQ(Off.Accel.ArenaNodes, 0u) << Src;
  }
}

TEST(ArenaIdentityTest, ParallelBatchMatchesWithArena) {
  // Run under tsan in CI: the batched oracle materializes candidate
  // trees before fanning out, so workers never touch the arena.
  const char *Src =
      "let f y =\n"
      "  let x = \"oops\" in\n"
      "  (x + 1) + (x + 2) + (x + 3) + (x + 4)\n";
  SeminalReport Serial = runSeminalOnSource(Src, withArena(true));
  SeminalReport Par =
      runSeminalOnSource(Src, withArena(true, /*ParallelBatch=*/true));
  EXPECT_EQ(fingerprint(Par), fingerprint(Serial));
  EXPECT_EQ(Par.OracleCalls, Serial.OracleCalls);
}

/// Seeded random programs: whatever the generator produces -- well-typed,
/// ill-typed, or unsearchable -- the arena run must match the non-arena
/// run byte for byte.
class ArenaFuzzIdentity : public ::testing::TestWithParam<int> {};

TEST_P(ArenaFuzzIdentity, RandomProgramsMatch) {
  for (int Iter = 0; Iter < 8; ++Iter) {
    uint64_t Seed = uint64_t(GetParam()) * 7919 + uint64_t(Iter) * 104729 + 1;
    Rng R(Seed);
    Program P = randomProgram(R, 4, 4);
    SeminalReport Off = runSeminal(P, withArena(false));
    SeminalReport On = runSeminal(P, withArena(true));
    EXPECT_EQ(fingerprint(On), fingerprint(Off))
        << "seed " << Seed << "\n" << printProgram(P);
    EXPECT_EQ(On.OracleCalls, Off.OracleCalls) << "seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaFuzzIdentity, ::testing::Range(0, 6));

} // namespace
