//===- EvalTest.cpp - Tests for the automated judge and categories --------==//

#include "core/Oracle.h"
#include "eval/Runner.h"
#include "minicaml/Parser.h"

#include <gtest/gtest.h>

using namespace seminal;
using namespace seminal::caml;

namespace {

Program parse(const std::string &Source) {
  ParseResult R = parseProgram(Source);
  EXPECT_TRUE(R.ok()) << (R.Error ? R.Error->str() : "");
  return R.ok() ? std::move(*R.Prog) : Program();
}

//===----------------------------------------------------------------------===//
// Path utilities
//===----------------------------------------------------------------------===//

TEST(PathDistanceTest, SameNodeIsZero) {
  NodePath A(0);
  A.Steps = {1, 2};
  EXPECT_EQ(pathDistance(A, A), std::optional<unsigned>(0));
}

TEST(PathDistanceTest, AncestorDescendant) {
  NodePath A(0), B(0);
  A.Steps = {1};
  B.Steps = {1, 0, 2};
  EXPECT_EQ(pathDistance(A, B), std::optional<unsigned>(2));
  EXPECT_EQ(pathDistance(B, A), std::optional<unsigned>(2));
}

TEST(PathDistanceTest, SiblingsAreUnrelated) {
  NodePath A(0), B(0);
  A.Steps = {1};
  B.Steps = {2};
  EXPECT_FALSE(pathDistance(A, B).has_value());
}

TEST(PathDistanceTest, DifferentDeclsAreUnrelated) {
  NodePath A(0), B(1);
  EXPECT_FALSE(pathDistance(A, B).has_value());
}

TEST(PathAtOffsetTest, FindsDeepestNode) {
  std::string Src = "let x = f (a + b) c";
  Program P = parse(Src);
  uint32_t AOffset = uint32_t(Src.find('a'));
  auto Path = pathAtOffset(P, AOffset);
  ASSERT_TRUE(Path.has_value());
  Expr *Node = resolvePath(P, *Path);
  ASSERT_NE(Node, nullptr);
  EXPECT_EQ(Node->kind(), Expr::Kind::Var);
  EXPECT_EQ(Node->Name, "a");
}

TEST(PathAtOffsetTest, OffsetOutsideAnyExprIsNull) {
  std::string Src = "let x = 1";
  Program P = parse(Src);
  EXPECT_FALSE(pathAtOffset(P, 0).has_value()); // 'l' of let
}

//===----------------------------------------------------------------------===//
// Judging the checker
//===----------------------------------------------------------------------===//

TEST(JudgeCheckerTest, ExactBlameIsAccurate) {
  // Truth: the string literal replaced by 0 at `1 + "s"`-style site.
  std::string Src = "let x = \"a\" ^ 0";
  Program P = parse(Src);
  CamlOracle O;
  auto Error = O.conventionalError(P);
  ASSERT_TRUE(Error.has_value());

  GroundTruth T;
  T.Kind = MutationKind::IntForString;
  T.Path = NodePath(0);
  T.Path.Steps = {1}; // the right operand
  EXPECT_EQ(judgeChecker(P, Error, {T}), Quality::Accurate);
}

TEST(JudgeCheckerTest, MisleadingBlameIsPoor) {
  // Figure 2: the checker blames x + y, where no change can help.
  std::string Src =
      "let map2 f aList bList =\n"
      "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
      "let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n";
  Program P = parse(Src);
  CamlOracle O;
  auto Error = O.conventionalError(P);
  ASSERT_TRUE(Error.has_value());

  // Ground truth: the tupled lambda (decl 1, first argument of map2).
  GroundTruth T;
  T.Kind = MutationKind::TupleCurriedFun;
  T.Path = NodePath(1);
  T.Path.Steps = {1};
  EXPECT_EQ(judgeChecker(P, Error, {T}), Quality::Poor);
}

TEST(JudgeCheckerTest, UnboundVariableBlameIsAccurate) {
  std::string Src = "let f x = strle x";
  Program P = parse(Src);
  CamlOracle O;
  auto Error = O.conventionalError(P);
  ASSERT_TRUE(Error.has_value());
  EXPECT_EQ(Error->TheKind, TypeError::Kind::Unbound);

  GroundTruth T;
  T.Kind = MutationKind::MisspellVar;
  T.Path = NodePath(0);
  T.Path.Steps = {0}; // callee of the application
  EXPECT_EQ(judgeChecker(P, Error, {T}), Quality::Accurate);
}

TEST(JudgeCheckerTest, NoErrorIsPoor) {
  Program P = parse("let x = 1");
  EXPECT_EQ(judgeChecker(P, std::nullopt, {}), Quality::Poor);
}

//===----------------------------------------------------------------------===//
// Judging SEMINAL
//===----------------------------------------------------------------------===//

TEST(JudgeSeminalTest, Figure2TopSuggestionIsAccurate) {
  std::string Src =
      "let map2 f aList bList =\n"
      "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
      "let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n";
  SeminalReport R = runSeminalOnSource(Src);

  GroundTruth T;
  T.Kind = MutationKind::TupleCurriedFun;
  T.Path = NodePath(1);
  T.Path.Steps = {1};
  EXPECT_EQ(judgeSeminal(R, {T}), Quality::Accurate);
}

TEST(JudgeSeminalTest, EmptyReportIsPoor) {
  SeminalReport R;
  EXPECT_EQ(judgeSeminal(R, {}), Quality::Poor);
}

TEST(JudgeSeminalTest, WrongSubtreeIsPoor) {
  std::string Src = "let x = 1 + \"two\"\n";
  SeminalReport R = runSeminalOnSource(Src);
  ASSERT_FALSE(R.Suggestions.empty());
  GroundTruth T;
  T.Kind = MutationKind::IntForString;
  T.Path = NodePath(0);
  T.Path.Steps = {0, 0, 0, 0, 0}; // nonsense far-away path
  EXPECT_EQ(judgeSeminal(R, {T}), Quality::Poor);
}

//===----------------------------------------------------------------------===//
// Categories
//===----------------------------------------------------------------------===//

TEST(CategoriesTest, FullTable) {
  using Q = Quality;
  // checker better
  EXPECT_EQ(categorize(Q::Accurate, Q::Poor, Q::Poor),
            Category::CheckerBetter);
  EXPECT_EQ(categorize(Q::GoodLocation, Q::Poor, Q::Poor),
            Category::CheckerBetter);
  // ours better without triage
  EXPECT_EQ(categorize(Q::Poor, Q::Accurate, Q::Accurate),
            Category::OursBetterNoTriage);
  // ours better only thanks to triage
  EXPECT_EQ(categorize(Q::Poor, Q::Accurate, Q::Poor),
            Category::OursBetterNeedsTriage);
  // plain tie
  EXPECT_EQ(categorize(Q::Accurate, Q::Accurate, Q::Accurate),
            Category::TieNoTriage);
  // tie that needed triage
  EXPECT_EQ(categorize(Q::Accurate, Q::Accurate, Q::Poor),
            Category::TieNeedsTriage);
  // both poor is still a tie
  EXPECT_EQ(categorize(Q::Poor, Q::Poor, Q::Poor), Category::TieNoTriage);
}

TEST(CategoriesTest, CountsArithmetic) {
  CategoryCounts C;
  C.add(Category::TieNoTriage, false);
  C.add(Category::TieNoTriage, true);
  C.add(Category::OursBetterNoTriage, false);
  C.add(Category::OursBetterNeedsTriage, false);
  C.add(Category::CheckerBetter, false);
  EXPECT_EQ(C.Total, 5u);
  EXPECT_EQ(C.oursBetter(), 2u);
  EXPECT_EQ(C.checkerBetter(), 1u);
  EXPECT_EQ(C.noWorse(), 4u);
  EXPECT_EQ(C.triageHelped(), 1u);
  EXPECT_EQ(C.BothPoorTies, 1u);
  EXPECT_DOUBLE_EQ(C.pct(C.oursBetter()), 40.0);
}

//===----------------------------------------------------------------------===//
// End-to-end runner on a small corpus
//===----------------------------------------------------------------------===//

TEST(RunnerTest, SmallCorpusEvaluation) {
  CorpusOptions CO;
  CO.Scale = 0.12;
  Corpus C = generateCorpus(CO);
  ASSERT_GT(C.Analyzed.size(), 10u);

  EvalResults R = runEvaluation(C);
  EXPECT_EQ(R.Files.size(), C.Analyzed.size());

  CategoryCounts Totals = R.totals();
  EXPECT_EQ(Totals.Total, unsigned(R.Files.size()));

  // Shape assertions mirroring the paper's headline: the search-based
  // approach is no worse than the checker on a clear majority of files.
  EXPECT_GT(Totals.pct(Totals.noWorse()), 55.0);

  // Per-group tables partition the totals.
  unsigned ProgSum = 0;
  for (const auto &KV : R.byProgrammer())
    ProgSum += KV.second.Total;
  EXPECT_EQ(ProgSum, Totals.Total);
  unsigned AsgSum = 0;
  for (const auto &KV : R.byAssignment())
    AsgSum += KV.second.Total;
  EXPECT_EQ(AsgSum, Totals.Total);
}

TEST(RunnerTest, SingleFileOutcomeFields) {
  CorpusOptions CO;
  CO.Scale = 0.12;
  Corpus C = generateCorpus(CO);
  ASSERT_FALSE(C.Analyzed.empty());
  EvalOptions EO;
  EO.MeasureTimes = true;
  FileOutcome Out = evaluateFile(C.Analyzed.front(), EO);
  EXPECT_GT(Out.OracleCallsFull, 0u);
  EXPECT_GT(Out.FullSeconds, 0.0);
  EXPECT_GT(Out.NoTriageSeconds, 0.0);
  EXPECT_GT(Out.NoReparenSeconds, 0.0);
}

} // namespace
