//===- MiniCppScenarioTest.cpp - Further C++ prototype scenarios ----------==//
//
// Beyond the Figure 10 headline: member-access flips, template arity
// and deduction failures, binder1st misuse, iterator typing through the
// builtin vector, and error-set behavior of the Section 4.2 success
// criterion.
//
//===----------------------------------------------------------------------===//

#include "minicpp/CcSearch.h"
#include "minicpp/CcStl.h"
#include "minicpp/CcTypeck.h"

#include <gtest/gtest.h>

using namespace seminal;
using namespace seminal::cpp;

namespace {

/// Program with one struct `box { long v; }` and one caller function.
CcProgram withBox(std::vector<CcStmt> Body,
                  std::vector<CcFuncDecl::Param> Params = {}) {
  CcProgram Prog;
  addMiniStl(Prog);
  auto Box = std::make_unique<CcStructDecl>();
  Box->Name = "box";
  Box->Fields.push_back({"v", ccLong()});
  Prog.Structs.push_back(std::move(Box));

  auto F = std::make_unique<CcFuncDecl>();
  F->Name = "caller";
  F->Params = std::move(Params);
  F->RetType = ccLong();
  F->Body = std::move(Body);
  Prog.Funcs.push_back(std::move(F));
  return Prog;
}

TEST(CcScenarioTest, MemberAccessOnStruct) {
  CcProgram Prog = withBox(
      [] {
        std::vector<CcStmt> Body;
        Body.push_back(ccReturn(ccMember(ccVar("b"), "v", false)));
        return Body;
      }(),
      {{"b", nullptr}});
  // Fill the param type after findStruct is possible.
  Prog.findFunc("caller")->Params[0].Type =
      ccStructType(Prog.findStruct("box"), {});
  EXPECT_TRUE(checkProgram(Prog).ok());
}

TEST(CcScenarioTest, ArrowOnValueIsErrorAndSearchFlipsIt) {
  CcProgram Prog = withBox(
      [] {
        std::vector<CcStmt> Body;
        Body.push_back(ccReturn(ccMember(ccVar("b"), "v", true))); // b->v
        return Body;
      }(),
      {{"b", nullptr}});
  Prog.findFunc("caller")->Params[0].Type =
      ccStructType(Prog.findStruct("box"), {});

  CcCheckResult Check = checkProgram(Prog);
  ASSERT_FALSE(Check.ok());
  EXPECT_NE(Check.Errors[0].Message.find("non-pointer"), std::string::npos);

  CcReport R = runCppSeminal(Prog);
  ASSERT_FALSE(R.Suggestions.empty());
  EXPECT_EQ(R.Suggestions.front().Description, "use '.' instead of '->'");
}

TEST(CcScenarioTest, DotOnPointerIsErrorAndSearchFlipsIt) {
  CcProgram Prog = withBox(
      [] {
        std::vector<CcStmt> Body;
        Body.push_back(ccReturn(ccMember(ccVar("b"), "v", false))); // b.v
        return Body;
      }(),
      {{"b", nullptr}});
  Prog.findFunc("caller")->Params[0].Type =
      ccPtr(ccStructType(Prog.findStruct("box"), {}));

  ASSERT_FALSE(checkProgram(Prog).ok());
  CcReport R = runCppSeminal(Prog);
  ASSERT_FALSE(R.Suggestions.empty());
  EXPECT_EQ(R.Suggestions.front().Description, "use '->' instead of '.'");
}

TEST(CcScenarioTest, VectorIteratorsTypecheck) {
  std::vector<CcStmt> Body;
  Body.push_back(ccVarDecl(ccPtr(ccLong()), "it",
                           ccMethodCall(ccVar("v"), "begin", {})));
  Body.push_back(ccReturn(ccUnary("*", ccVar("it"))));
  CcProgram Prog = withBox(std::move(Body), {{"v", ccVector(ccLong())}});
  CcCheckResult R = checkProgram(Prog);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(CcScenarioTest, WrongIteratorElementTypeCaught) {
  std::vector<CcStmt> Body;
  Body.push_back(ccVarDecl(ccPtr(ccDouble()), "it",
                           ccMethodCall(ccVar("v"), "begin", {})));
  Body.push_back(ccReturn(ccIntLit(0)));
  CcProgram Prog = withBox(std::move(Body), {{"v", ccVector(ccLong())}});
  EXPECT_FALSE(checkProgram(Prog).ok());
}

TEST(CcScenarioTest, Binder1stWorksThroughTransform) {
  // transform(v.begin(), v.end(), v.begin(), bind1st(multiplies<long>(), 5))
  std::vector<CcExprPtr> BindArgs;
  BindArgs.push_back(ccConstruct("multiplies", {ccLong()}, {}));
  BindArgs.push_back(ccIntLit(5));
  std::vector<CcExprPtr> Args;
  Args.push_back(ccMethodCall(ccVar("v"), "begin", {}));
  Args.push_back(ccMethodCall(ccVar("v"), "end", {}));
  Args.push_back(ccMethodCall(ccVar("v"), "begin", {}));
  Args.push_back(ccCallNamed("bind1st", std::move(BindArgs)));
  std::vector<CcStmt> Body;
  Body.push_back(ccExprStmt(ccCallNamed("transform", std::move(Args))));
  Body.push_back(ccReturn(ccIntLit(0)));
  CcProgram Prog = withBox(std::move(Body), {{"v", ccVector(ccLong())}});
  CcCheckResult R = checkProgram(Prog);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(CcScenarioTest, TemplateArityMismatch) {
  std::vector<CcExprPtr> Args;
  Args.push_back(ccIntLit(1));
  std::vector<CcStmt> Body;
  Body.push_back(ccExprStmt(ccCallNamed("bind1st", std::move(Args))));
  Body.push_back(ccReturn(ccIntLit(0)));
  CcProgram Prog = withBox(std::move(Body));
  CcCheckResult R = checkProgram(Prog);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].Message.find("wrong number of arguments"),
            std::string::npos);
}

TEST(CcScenarioTest, ConflictingDeductionReported) {
  // transform's two iterator parameters share template parameter In:
  // passing long* and a raw int is a deduction failure.
  std::vector<CcExprPtr> Args;
  Args.push_back(ccMethodCall(ccVar("v"), "begin", {}));
  Args.push_back(ccIntLit(3));
  Args.push_back(ccMethodCall(ccVar("v"), "begin", {}));
  std::vector<CcExprPtr> BindArgs;
  BindArgs.push_back(ccConstruct("multiplies", {ccLong()}, {}));
  BindArgs.push_back(ccIntLit(5));
  Args.push_back(ccCallNamed("bind1st", std::move(BindArgs)));
  std::vector<CcStmt> Body;
  Body.push_back(ccExprStmt(ccCallNamed("transform", std::move(Args))));
  Body.push_back(ccReturn(ccIntLit(0)));
  CcProgram Prog = withBox(std::move(Body), {{"v", ccVector(ccLong())}});
  CcCheckResult R = checkProgram(Prog);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].Message.find("no matching function"),
            std::string::npos);
}

TEST(CcScenarioTest, GenericOperatorBodyErrorsCarryChain) {
  // multiplies<long>()(v, 5) where v is a vector: the generic operator's
  // body a * b fails, and the error's chain names the operator.
  std::vector<CcExprPtr> CallArgs;
  CallArgs.push_back(ccVar("v"));
  CallArgs.push_back(ccIntLit(5));
  std::vector<CcStmt> Body;
  Body.push_back(ccExprStmt(ccCall(
      ccConstruct("multiplies", {ccLong()}, {}), std::move(CallArgs))));
  Body.push_back(ccReturn(ccIntLit(0)));
  CcProgram Prog = withBox(std::move(Body), {{"v", ccVector(ccLong())}});
  CcCheckResult R = checkProgram(Prog);
  ASSERT_FALSE(R.ok());
  bool ChainNamesOperator = false;
  for (const auto &E : R.Errors)
    for (const auto &C : E.Chain)
      if (C.find("multiplies<long>::operator()") != std::string::npos)
        ChainNamesOperator = true;
  EXPECT_TRUE(ChainNamesOperator) << R.str();
}

TEST(CcScenarioTest, SuccessCriterionRejectsPartialTrades) {
  // A modification that fixes one error but introduces a different one
  // must NOT count as success: statement removal of a VarDecl whose
  // variable is used later trades an error for a new undeclared-variable
  // error, so the searcher must not offer it.
  CcProgram Prog;
  addMiniStl(Prog);
  auto F = std::make_unique<CcFuncDecl>();
  F->Name = "caller";
  F->RetType = ccLong();
  // long a = vector-typed nonsense;  (error in the initializer)
  F->Body.push_back(ccVarDecl(ccLong(), "a",
                              ccMethodCall(ccVar("nothere"), "begin", {})));
  // return a;  (uses a)
  F->Body.push_back(ccReturn(ccVar("a")));
  Prog.Funcs.push_back(std::move(F));

  CcReport R = runCppSeminal(Prog);
  for (const auto &S : R.Suggestions)
    EXPECT_NE(S.Description, "remove this statement")
        << "removing the declaration would orphan its uses";
}

TEST(CcScenarioTest, PrintFuncRendersTemplateHeader) {
  CcProgram Prog;
  addMiniStl(Prog);
  const CcFuncDecl *F = Prog.findFunc("compose1");
  ASSERT_NE(F, nullptr);
  std::string Text = printFunc(*F);
  EXPECT_NE(Text.find("template<class Op1, class Op2>"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("unary_compose<Op1, Op2>"), std::string::npos)
      << Text;
}

} // namespace
