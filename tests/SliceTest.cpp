//===- SliceTest.cpp - Tests for constraint-provenance error slicing -------==//
//
// Covers the three properties DESIGN.md section 9 promises:
//
//   * soundness  -- the change behind every top-ranked suggestion is rooted
//     at a node the slice did not rule out (corpus-wide),
//   * minimality -- on hand-written programs the minimized core is exactly
//     the jointly-clashing nodes, not the whole declaration,
//   * identity   -- slice-guided search returns the bit-identical ranked
//     suggestion list as unguided search (corpus-wide; the fuzz variant
//     lives in FuzzTest.cpp).
//
// Also pins the UnifyResult rollback fix: a failed unification must not
// leak partial bindings into rendered diagnostics.
//
//===----------------------------------------------------------------------===//

#include "analysis/Slice.h"
#include "analysis/SliceGuide.h"
#include "core/Message.h"
#include "core/Seminal.h"
#include "corpus/Generator.h"
#include "minicaml/Infer.h"
#include "minicaml/Parser.h"
#include "minicaml/Printer.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace seminal;
using namespace seminal::analysis;
using namespace seminal::caml;

namespace {

Program parse(const std::string &Source) {
  ParseResult R = parseProgram(Source);
  EXPECT_TRUE(R.ok()) << (R.Error ? R.Error->str() : "") << "\n" << Source;
  return R.ok() ? std::move(*R.Prog) : Program();
}

/// Index of the first declaration whose prefix fails to type-check.
unsigned failingDecl(const Program &P) {
  for (unsigned I = 0; I < P.Decls.size(); ++I) {
    TypecheckOptions Opts;
    Opts.DeclLimit = I + 1;
    if (!typecheckProgram(P, Opts).ok())
      return I;
  }
  ADD_FAILURE() << "program unexpectedly type-checks";
  return 0;
}

ErrorSlice slice(const Program &P, SliceOptions Opts = {}) {
  return computeErrorSlice(P, failingDecl(P), Opts);
}

/// The source text each core span covers, sorted for stable comparison.
std::vector<std::string> coreTexts(const std::string &Source,
                                   const ErrorSlice &S) {
  std::vector<std::string> Out;
  for (const SourceSpan &Sp : S.CoreSpans)
    Out.push_back(Source.substr(Sp.Begin.Offset, Sp.EndOffset - Sp.Begin.Offset));
  std::sort(Out.begin(), Out.end());
  return Out;
}

//===----------------------------------------------------------------------===//
// Basic validity
//===----------------------------------------------------------------------===//

TEST(SliceTest, WellTypedProgramYieldsInvalidSlice) {
  Program P = parse("let x = 1 + 2");
  ErrorSlice S = computeErrorSlice(P, 0);
  EXPECT_FALSE(S.Valid);
}

TEST(SliceTest, UnboundNameYieldsAnchoredSlice) {
  // Not a unification clash: no constraint component exists, so the
  // slicer falls back to a span-anchored core -- valid only because the
  // carved witness (everything else wildcarded) still fails to check.
  Program P = parse("let x = nosuchname + 1");
  ErrorSlice S = computeErrorSlice(P, 0);
  ASSERT_TRUE(S.Valid);
  EXPECT_TRUE(S.SpanAnchored);
  EXPECT_TRUE(S.CoreWitnessOk);
  ASSERT_EQ(S.Core.size(), 1u);
  // The anchor is the deepest node enclosing the error span: the
  // offending variable itself.
  EXPECT_NE(S.render().find("anchor:"), std::string::npos);
}

TEST(SliceTest, AnchoredSliceKeepsGuidedSearchIdentical) {
  // Non-unification failure (unbound name) in a declaration with plenty
  // of innocent structure: the anchored slice must prune without
  // changing a single suggestion.
  const char *Src = "let a = 1 + 2\n"
                    "let b = (a * 3, [a; 4], \"tag\")\n"
                    "let c = (a + 1, nosuchname 5, [2; 3])\n";
  SeminalOptions Ranked;
  Ranked.Search.ComputeSlice = true;
  SeminalOptions Guided;
  Guided.Search.SliceGuided = true;
  SeminalReport RR = runSeminalOnSource(Src, Ranked);
  SeminalReport RG = runSeminalOnSource(Src, Guided);
  ASSERT_TRUE(RG.Slice.has_value());
  EXPECT_TRUE(RG.Slice->SpanAnchored);
  EXPECT_LE(RG.OracleCalls, RR.OracleCalls);
  ASSERT_EQ(RG.Suggestions.size(), RR.Suggestions.size());
  MessageOptions MO;
  for (size_t I = 0; I < RG.Suggestions.size(); ++I)
    EXPECT_EQ(renderSuggestion(RG.Suggestions[I], MO),
              renderSuggestion(RR.Suggestions[I], MO));
}

TEST(SliceTest, OutOfRangeFocusYieldsInvalidSlice) {
  Program P = parse("let x = 1");
  EXPECT_FALSE(computeErrorSlice(P, 5).Valid);
}

TEST(SliceTest, SimpleClashProducesValidSlice) {
  Program P = parse("let x = 1 + \"two\"");
  ErrorSlice S = slice(P);
  ASSERT_TRUE(S.Valid);
  EXPECT_EQ(S.DeclIndex, 0u);
  EXPECT_FALSE(S.Cyclic);
  EXPECT_FALSE(S.Influence.empty());
  EXPECT_FALSE(S.Core.empty());
  EXPECT_LE(S.Core.size(), S.Influence.size());
  // The clash is int-vs-string; both named types show up in the component.
  EXPECT_NE(std::find(S.InvolvedTypes.begin(), S.InvolvedTypes.end(), "int"),
            S.InvolvedTypes.end());
  EXPECT_NE(std::find(S.InvolvedTypes.begin(), S.InvolvedTypes.end(),
                      "string"),
            S.InvolvedTypes.end());
}

TEST(SliceTest, RenderMentionsClashAndSpans) {
  Program P = parse("let x = 1 + \"two\"");
  ErrorSlice S = slice(P);
  ASSERT_TRUE(S.Valid);
  std::string R = S.render("test.ml");
  EXPECT_NE(R.find("test.ml"), std::string::npos);
  EXPECT_NE(R.find("int"), std::string::npos);
  EXPECT_NE(R.find("string"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Minimality on hand-written programs
//===----------------------------------------------------------------------===//

TEST(SliceTest, MinimalCoreExcludesInnocentBindings) {
  // The let-bound `a` and `b` are irrelevant; only the string literal and
  // the addition's int constraint clash.
  std::string Src = "let f =\n"
                    "  let a = 1 in\n"
                    "  let b = 2 in\n"
                    "  a + b + \"three\"";
  Program P = parse(Src);
  ErrorSlice S = slice(P);
  ASSERT_TRUE(S.Valid);
  std::vector<std::string> Texts = coreTexts(Src, S);
  // The innocent bindings never survive minimization.
  for (const std::string &T : Texts) {
    EXPECT_EQ(T.find("let a"), std::string::npos) << T;
    EXPECT_EQ(T.find("let b"), std::string::npos) << T;
  }
  // The offending literal does.
  bool HasString = false;
  for (const std::string &T : Texts)
    HasString |= T.find("\"three\"") != std::string::npos;
  EXPECT_TRUE(HasString) << S.render();
}

TEST(SliceTest, CoreIsAnAntichain) {
  std::string Src = "let f x =\n"
                    "  if x then 1 else \"no\"";
  Program P = parse(Src);
  ErrorSlice S = slice(P);
  ASSERT_TRUE(S.Valid);
  // No core path is a strict prefix (ancestor) of another.
  for (const NodePath &A : S.Core)
    for (const NodePath &B : S.Core) {
      if (A == B)
        continue;
      bool Prefix = A.Steps.size() < B.Steps.size() &&
                    std::equal(A.Steps.begin(), A.Steps.end(), B.Steps.begin());
      EXPECT_FALSE(Prefix) << A.str() << " is an ancestor of " << B.str();
    }
}

TEST(SliceTest, MinimizationRespectsCheckBudget) {
  std::string Src = "let f = 1 + 2 + 3 + 4 + 5 + \"six\"";
  Program P = parse(Src);
  SliceOptions Opts;
  Opts.MaxMinimizeChecks = 2;
  ErrorSlice S = slice(P, Opts);
  ASSERT_TRUE(S.Valid);
  EXPECT_LE(S.MinimizeChecks, 2u);
}

TEST(SliceTest, MinimizeOffLeavesCoreEqualInfluence) {
  Program P = parse("let x = 1 + \"two\"");
  SliceOptions Opts;
  Opts.Minimize = false;
  ErrorSlice S = slice(P, Opts);
  ASSERT_TRUE(S.Valid);
  EXPECT_EQ(S.Core.size(), S.Influence.size());
  EXPECT_EQ(S.MinimizeChecks, 0u);
}

//===----------------------------------------------------------------------===//
// Cross-declaration influence
//===----------------------------------------------------------------------===//

TEST(SliceTest, UseSiteClashOfPrefixFunctionSetsPrefixInfluence) {
  // The clash manifests at the use of `inc`, but its cause connects to the
  // prefix declaration through instantiation-copy edges.
  std::string Src = "let inc x = x + 1\n"
                    "let y = inc \"hello\"";
  Program P = parse(Src);
  ErrorSlice S = slice(P);
  ASSERT_TRUE(S.Valid);
  EXPECT_EQ(S.DeclIndex, 1u);
  EXPECT_TRUE(S.PrefixInfluence) << S.render();
}

TEST(SliceTest, ParameterClashSetsDeclHeaderInfluence) {
  // `x` is constrained by the header pattern; using it at two types pulls
  // the header into the component.
  std::string Src = "let f x = (x + 1, x ^ \"s\")";
  Program P = parse(Src);
  ErrorSlice S = slice(P);
  ASSERT_TRUE(S.Valid);
  EXPECT_TRUE(S.DeclHeaderInfluence) << S.render();
}

TEST(SliceTest, OccursCheckMarksCyclic) {
  std::string Src = "let rec f x = f";
  Program P = parse(Src);
  ErrorSlice S = slice(P);
  if (S.Valid) {
    EXPECT_TRUE(S.Cyclic);
  }
}

//===----------------------------------------------------------------------===//
// SliceGuide invariants
//===----------------------------------------------------------------------===//

TEST(SliceTest, GuideNeverDoomsInfluenceNodes) {
  std::string Src = "let f =\n"
                    "  let pad = \"x\" in\n"
                    "  let n = 3 in\n"
                    "  n + pad";
  Program P = parse(Src);
  ErrorSlice S = slice(P);
  ASSERT_TRUE(S.Valid);
  SliceGuide G(P, S);
  EXPECT_GT(G.influenceSize(), 0u);
  for (const NodePath &Path : S.Influence) {
    Expr *E = resolvePath(P, Path);
    ASSERT_NE(E, nullptr);
    EXPECT_FALSE(G.subtreeDoomed(*E)) << Path.str();
  }
  // The declaration root contains the whole influence set; never doomed.
  ASSERT_FALSE(P.Decls.empty());
  EXPECT_FALSE(G.subtreeDoomed(*P.Decls[S.DeclIndex]->Rhs));
}

//===----------------------------------------------------------------------===//
// Corpus-wide properties (the mutated-student-program corpus)
//===----------------------------------------------------------------------===//

TEST(SliceCorpusTest, GuidedSearchIsIdenticalAndCheaper) {
  // On every corpus file, slice-guided search must reproduce the
  // slice-ranked suggestion list exactly while never spending more
  // logical oracle calls; across the corpus it must spend strictly fewer.
  CorpusOptions CO;
  CO.Scale = 0.3;
  Corpus C = generateCorpus(CO);
  ASSERT_FALSE(C.Analyzed.empty());

  size_t RankedCalls = 0, GuidedCalls = 0, SlicedFiles = 0;
  for (const CorpusFile &F : C.Analyzed) {
    SeminalOptions Ranked;
    Ranked.Search.ComputeSlice = true;
    SeminalOptions Guided = Ranked;
    Guided.Search.SliceGuided = true;

    SeminalReport RR = runSeminalOnSource(F.Source, Ranked);
    SeminalReport RG = runSeminalOnSource(F.Source, Guided);

    EXPECT_LE(RG.OracleCalls, RR.OracleCalls) << F.Source;
    ASSERT_EQ(RG.Suggestions.size(), RR.Suggestions.size()) << F.Source;
    for (size_t J = 0; J < RR.Suggestions.size(); ++J)
      ASSERT_EQ(renderSuggestion(RG.Suggestions[J]),
                renderSuggestion(RR.Suggestions[J]))
          << F.Source << "\nrank " << J;
    RankedCalls += RR.OracleCalls;
    GuidedCalls += RG.OracleCalls;
    if (RG.Slice)
      ++SlicedFiles;
  }
  EXPECT_GT(SlicedFiles, 0u);
  EXPECT_LT(GuidedCalls, RankedCalls);
}

TEST(SliceCorpusTest, TopSuggestionsRootInTheSlice) {
  // Soundness seen from the ranking side: an untriaged suggestion's node
  // passed the real removal probe, so whenever a slice exists its subtree
  // must intersect the influence set (otherwise the guide would have
  // been entitled to skip it).
  CorpusOptions CO;
  CO.Scale = 0.2;
  Corpus C = generateCorpus(CO);

  size_t Checked = 0;
  for (const CorpusFile &F : C.Analyzed) {
    SeminalOptions Opts;
    Opts.Search.ComputeSlice = true;
    SeminalReport R = runSeminalOnSource(F.Source, Opts);
    if (!R.Slice || !R.Slice->Valid)
      continue;
    for (const Suggestion &S : R.Suggestions) {
      if (S.ViaTriage || S.Kind == ChangeKind::PatternFix)
        continue; // Triage rewrites the context; the premise is gone.
      bool Intersects = false;
      for (const NodePath &Q : R.Slice->Influence) {
        bool Within = S.Path.Steps.size() <= Q.Steps.size() &&
                      std::equal(S.Path.Steps.begin(), S.Path.Steps.end(),
                                 Q.Steps.begin());
        if (Within) {
          Intersects = true;
          break;
        }
      }
      ++Checked;
      EXPECT_TRUE(Intersects)
          << F.Source << "\nsuggestion at " << S.Path.str() << ": "
          << S.Description << "\n" << R.Slice->render();
    }
  }
  EXPECT_GT(Checked, 0u);
}

TEST(SliceTest, GuideDoomsDisjointSubtree) {
  // `let a = 1 in` is disjoint from the string/int clash below it.
  std::string Src = "let f =\n"
                    "  let a = true in\n"
                    "  1 + \"two\"";
  Program P = parse(Src);
  ErrorSlice S = slice(P);
  ASSERT_TRUE(S.Valid);
  SliceGuide G(P, S);
  // Find the `true` literal: it must be doomable.
  Expr *Root = P.Decls[S.DeclIndex]->Rhs.get();
  ASSERT_NE(Root, nullptr);
  ASSERT_EQ(Root->kind(), Expr::Kind::Let);
  Expr *Bound = Root->child(0);
  EXPECT_TRUE(G.subtreeDoomed(*Bound)) << S.render();
  EXPECT_EQ(G.PrunedSubtrees, 0u) << "queries must not bump counters";
}

} // namespace
