//===- FuzzTest.cpp - Randomized property tests ----------------------------==//
//
// Properties the system must hold on *arbitrary* inputs, not just the
// paper's examples:
//
//   * the printer round-trips every tree it can print;
//   * the type checker is total: it accepts or reports a located error,
//     never crashes, and is deterministic;
//   * the searcher is sound (untriaged suggestions produce well-typed
//     programs), restores its working copy, and respects its budget even
//     against adversarial oracles.
//
//===----------------------------------------------------------------------===//

#include "core/Oracle.h"
#include "core/Seminal.h"
#include "corpus/RandomAst.h"
#include "minicaml/Infer.h"
#include "minicaml/Parser.h"
#include "minicaml/Printer.h"

#include <gtest/gtest.h>

using namespace seminal;
using namespace seminal::caml;

namespace {

//===----------------------------------------------------------------------===//
// Printer round-trip
//===----------------------------------------------------------------------===//

class PrinterFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PrinterFuzz, RandomExprsRoundTrip) {
  Rng R(uint64_t(GetParam()) * 7919 + 13);
  for (int I = 0; I < 200; ++I) {
    ExprPtr E = randomExpr(R, 4);
    std::string Printed = printExpr(*E);
    ParseExprResult Reparsed = parseExpression(Printed);
    ASSERT_TRUE(Reparsed.ok())
        << "printed expr failed to parse: " << Printed << "\n("
        << (Reparsed.Error ? Reparsed.Error->str() : "") << ")";
    EXPECT_TRUE(E->equals(*Reparsed.E))
        << "round trip changed structure:\n  " << Printed << "\n  vs\n  "
        << printExpr(*Reparsed.E);
  }
}

TEST_P(PrinterFuzz, RandomProgramsRoundTrip) {
  Rng R(uint64_t(GetParam()) * 104729 + 7);
  for (int I = 0; I < 50; ++I) {
    Program P = randomProgram(R, 4, 3);
    std::string Printed = printProgram(P);
    ParseResult Reparsed = parseProgram(Printed);
    ASSERT_TRUE(Reparsed.ok()) << Printed;
    EXPECT_TRUE(P.equals(*Reparsed.Prog)) << Printed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrinterFuzz, ::testing::Range(0, 8));

//===----------------------------------------------------------------------===//
// Checker totality and determinism
//===----------------------------------------------------------------------===//

class CheckerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CheckerFuzz, TotalAndDeterministic) {
  Rng R(uint64_t(GetParam()) * 31337 + 5);
  for (int I = 0; I < 100; ++I) {
    Program P = randomProgram(R, 4, 3);
    TypecheckResult A = typecheckProgram(P);
    TypecheckResult B = typecheckProgram(P);
    EXPECT_EQ(A.ok(), B.ok());
    if (!A.ok()) {
      EXPECT_FALSE(A.Error->Message.empty());
      EXPECT_EQ(A.Error->Message, B.Error->Message);
    }
  }
}

TEST_P(CheckerFuzz, CloneChecksIdentically) {
  Rng R(uint64_t(GetParam()) * 271 + 11);
  for (int I = 0; I < 60; ++I) {
    Program P = randomProgram(R, 3, 3);
    Program Q = P.clone();
    EXPECT_EQ(typecheckProgram(P).ok(), typecheckProgram(Q).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerFuzz, ::testing::Range(0, 6));

//===----------------------------------------------------------------------===//
// Searcher soundness and robustness
//===----------------------------------------------------------------------===//

class SearcherFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SearcherFuzz, SoundOnRandomIllTypedPrograms) {
  Rng R(uint64_t(GetParam()) * 65537 + 3);
  int Examined = 0;
  for (int I = 0; I < 200 && Examined < 25; ++I) {
    Program P = randomProgram(R, 3, 3);
    if (typecheckProgram(P).ok())
      continue;
    ++Examined;
    SeminalOptions Opts;
    Opts.Search.MaxOracleCalls = 3000;
    SeminalReport Report = runSeminal(P, Opts);
    for (const auto &S : Report.Suggestions) {
      if (S.ViaTriage)
        continue;
      TypecheckResult TR = typecheckProgram(S.Modified);
      EXPECT_TRUE(TR.ok())
          << "unsound suggestion on random program:\n"
          << printProgram(P) << "\nsuggestion: " << renderSuggestion(S);
    }
  }
  EXPECT_GT(Examined, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearcherFuzz, ::testing::Range(0, 4));

//===----------------------------------------------------------------------===//
// Adversarial oracles
//===----------------------------------------------------------------------===//

/// An oracle that answers according to a script, ignoring the program.
class ScriptedOracle : public Oracle {
public:
  enum class Mode { AlwaysNo, AlwaysYes, Random };
  explicit ScriptedOracle(Mode M, uint64_t Seed = 1) : TheMode(M), R(Seed) {}

  std::optional<TypeError>
  conventionalError(const Program &Prog) override {
    return std::nullopt;
  }

protected:
  bool typecheckImpl(const Program &Prog) override {
    switch (TheMode) {
    case Mode::AlwaysNo:
      return false;
    case Mode::AlwaysYes:
      return true;
    case Mode::Random:
      return R.chance(0.5);
    }
    return false;
  }
  std::optional<std::string> typeOfNodeImpl(const Program &Prog,
                                            const Expr *Node) override {
    return std::nullopt;
  }

private:
  Mode TheMode;
  Rng R;
};

TEST(AdversarialOracleTest, AlwaysYesBypassesSearch) {
  ScriptedOracle O(ScriptedOracle::Mode::AlwaysYes);
  SearchOptions Opts;
  Searcher S(O, Opts);
  ParseResult P = parseProgram("let x = 1 + true");
  SearchOutput Out = S.run(*P.Prog);
  EXPECT_TRUE(Out.InputTypechecks);
  EXPECT_TRUE(Out.Suggestions.empty());
}

TEST(AdversarialOracleTest, AlwaysNoTerminatesWithoutSuggestions) {
  ScriptedOracle O(ScriptedOracle::Mode::AlwaysNo);
  SearchOptions Opts;
  Opts.MaxOracleCalls = 2000;
  Searcher S(O, Opts);
  ParseResult P = parseProgram("let f x = x + 1\nlet y = f 1 2");
  SearchOutput Out = S.run(*P.Prog);
  // Nothing ever "type-checks", so no prefix is found failing-then-
  // passing and no change can succeed; the search must end cleanly.
  EXPECT_TRUE(Out.Suggestions.empty());
}

class RandomOracleFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RandomOracleFuzz, RandomOracleNeverBreaksTheSearcher) {
  ScriptedOracle O(ScriptedOracle::Mode::Random, uint64_t(GetParam()));
  SearchOptions Opts;
  Opts.MaxOracleCalls = 500;
  Searcher S(O, Opts);
  ParseResult P = parseProgram(
      "let go y =\n"
      "  let a = 3 + true in\n"
      "  match [a] with [] -> y | b :: t -> b + \"s\"\n");
  SearchOutput Out = S.run(*P.Prog);
  EXPECT_LE(O.callCount(), Opts.MaxOracleCalls + 2);
  // Whatever nonsense the oracle answered, suggestions carry coherent
  // payloads.
  for (const auto &S2 : Out.Suggestions) {
    EXPECT_FALSE(S2.Description.empty());
    EXPECT_LT(S2.Path.DeclIndex, P.Prog->Decls.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOracleFuzz, ::testing::Range(0, 6));

TEST(BudgetTest, SearchIsIdempotentOnWorkingCopy) {
  // Running the search twice on the same program yields identical
  // suggestion sets: the in-place editing restores everything.
  std::string Src = "let go y =\n"
                    "  let a = 3 + true in\n"
                    "  let b = 4 + \"hi\" in\n"
                    "  y\n";
  SeminalReport R1 = runSeminalOnSource(Src);
  SeminalReport R2 = runSeminalOnSource(Src);
  ASSERT_EQ(R1.Suggestions.size(), R2.Suggestions.size());
  for (size_t I = 0; I < R1.Suggestions.size(); ++I) {
    EXPECT_EQ(renderSuggestion(R1.Suggestions[I]),
              renderSuggestion(R2.Suggestions[I]));
  }
  EXPECT_EQ(R1.OracleCalls, R2.OracleCalls);
}

} // namespace
