//===- FuzzTest.cpp - Randomized property tests ----------------------------==//
//
// Properties the system must hold on *arbitrary* inputs, not just the
// paper's examples:
//
//   * the printer round-trips every tree it can print;
//   * the type checker is total: it accepts or reports a located error,
//     never crashes, and is deterministic;
//   * the searcher is sound (untriaged suggestions produce well-typed
//     programs), restores its working copy, and respects its budget even
//     against adversarial oracles.
//
//===----------------------------------------------------------------------===//

#include "core/Oracle.h"
#include "core/Seminal.h"
#include "corpus/RandomAst.h"
#include "minicaml/Infer.h"
#include "minicaml/Parser.h"
#include "minicaml/Printer.h"

#include <gtest/gtest.h>

#include <functional>

using namespace seminal;
using namespace seminal::caml;

namespace {

//===----------------------------------------------------------------------===//
// Failure reporting: seed + minimized counterexample
//===----------------------------------------------------------------------===//
//
// A failing property on a random program is only actionable if it can be
// reproduced and read. Every fuzz loop below seeds its generator per
// iteration, so a failure message carries the exact seed; and before
// reporting, the failing program is shrunk greedily -- whole declarations
// dropped, then subtrees replaced by their own children -- as long as the
// failure predicate keeps holding.

/// Greedily minimizes \p P while \p StillFails(P) holds. Two moves, run
/// to fixpoint: drop a whole declaration; hoist a child subtree over its
/// parent. Bounded, deterministic, and predicate-agnostic.
Program minimizeProgram(Program P,
                        const std::function<bool(const Program &)> &StillFails) {
  bool Shrunk = true;
  int Budget = 2000; // predicate evaluations; plenty for test-sized trees
  while (Shrunk && Budget > 0) {
    Shrunk = false;

    // Move 1: drop declarations (later ones first -- they depend on
    // earlier ones, so they are more likely to be removable).
    for (size_t I = P.Decls.size(); I-- > 0 && Budget > 0;) {
      Program Candidate = P.clone();
      Candidate.Decls.erase(Candidate.Decls.begin() + long(I));
      --Budget;
      if (!Candidate.Decls.empty() && StillFails(Candidate)) {
        P = std::move(Candidate);
        Shrunk = true;
      }
    }

    // Move 2: replace each node with each of its children (preorder;
    // restart the scan after any success since paths shift).
    for (unsigned D = 0; D < P.Decls.size() && Budget > 0; ++D) {
      std::vector<NodePath> Work;
      if (P.Decls[D]->Rhs)
        Work.push_back(NodePath(D));
      while (!Work.empty() && Budget > 0) {
        NodePath Path = Work.back();
        Work.pop_back();
        Program &Cur = P;
        Expr *Node = resolvePath(Cur, Path);
        if (!Node)
          continue;
        bool Replaced = false;
        for (unsigned C = 0; C < Node->numChildren() && Budget > 0; ++C) {
          Program Candidate = P.clone();
          ExprPtr Child = resolvePath(Candidate, Path)->child(C)->clone();
          replaceAtPath(Candidate, Path, std::move(Child));
          --Budget;
          if (StillFails(Candidate)) {
            P = std::move(Candidate);
            Shrunk = true;
            Replaced = true;
            // Re-examine the same path: the hoisted child may shrink
            // further.
            Work.push_back(Path);
            break;
          }
        }
        if (!Replaced)
          for (unsigned C = 0; C < Node->numChildren(); ++C)
            Work.push_back(Path.descend(C));
      }
    }
  }
  return P;
}

/// Renders a reproducible failure report for ASSERT/EXPECT messages.
std::string fuzzFailure(uint64_t Seed, const Program &Original,
                        const std::function<bool(const Program &)> &StillFails) {
  std::string Out = "\n--- fuzz failure ---\nseed: " + std::to_string(Seed) +
                    "\noriginal program:\n" + printProgram(Original);
  Program Min = minimizeProgram(Original.clone(), StillFails);
  Out += "minimized program (" + std::to_string(Min.Decls.size()) +
         " decls):\n" + printProgram(Min);
  Out += "--- end fuzz failure ---";
  return Out;
}

//===----------------------------------------------------------------------===//
// Printer round-trip
//===----------------------------------------------------------------------===//

class PrinterFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PrinterFuzz, RandomExprsRoundTrip) {
  for (int I = 0; I < 200; ++I) {
    uint64_t Seed = uint64_t(GetParam()) * 7919 + 13 + uint64_t(I) * 1000003;
    Rng R(Seed);
    ExprPtr E = randomExpr(R, 4);
    std::string Printed = printExpr(*E);
    ParseExprResult Reparsed = parseExpression(Printed);
    ASSERT_TRUE(Reparsed.ok())
        << "printed expr failed to parse (seed " << Seed
        << "): " << Printed << "\n("
        << (Reparsed.Error ? Reparsed.Error->str() : "") << ")";
    EXPECT_TRUE(E->equals(*Reparsed.E))
        << "round trip changed structure (seed " << Seed << "):\n  "
        << Printed << "\n  vs\n  " << printExpr(*Reparsed.E);
  }
}

TEST_P(PrinterFuzz, RandomProgramsRoundTrip) {
  auto FailsRoundTrip = [](const Program &P) {
    std::string Printed = printProgram(P);
    ParseResult Reparsed = parseProgram(Printed);
    return !Reparsed.ok() || !P.equals(*Reparsed.Prog);
  };
  for (int I = 0; I < 50; ++I) {
    uint64_t Seed = uint64_t(GetParam()) * 104729 + 7 + uint64_t(I) * 999983;
    Rng R(Seed);
    Program P = randomProgram(R, 4, 3);
    ASSERT_FALSE(FailsRoundTrip(P)) << fuzzFailure(Seed, P, FailsRoundTrip);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrinterFuzz, ::testing::Range(0, 8));

//===----------------------------------------------------------------------===//
// Checker totality and determinism
//===----------------------------------------------------------------------===//

class CheckerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CheckerFuzz, TotalAndDeterministic) {
  auto NonDeterministic = [](const Program &P) {
    TypecheckResult A = typecheckProgram(P);
    TypecheckResult B = typecheckProgram(P);
    if (A.ok() != B.ok())
      return true;
    return !A.ok() && (A.Error->Message.empty() ||
                       A.Error->Message != B.Error->Message);
  };
  for (int I = 0; I < 100; ++I) {
    uint64_t Seed = uint64_t(GetParam()) * 31337 + 5 + uint64_t(I) * 999961;
    Rng R(Seed);
    Program P = randomProgram(R, 4, 3);
    EXPECT_FALSE(NonDeterministic(P)) << fuzzFailure(Seed, P,
                                                     NonDeterministic);
  }
}

TEST_P(CheckerFuzz, CloneChecksIdentically) {
  Rng R(uint64_t(GetParam()) * 271 + 11);
  for (int I = 0; I < 60; ++I) {
    Program P = randomProgram(R, 3, 3);
    Program Q = P.clone();
    EXPECT_EQ(typecheckProgram(P).ok(), typecheckProgram(Q).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerFuzz, ::testing::Range(0, 6));

//===----------------------------------------------------------------------===//
// Searcher soundness and robustness
//===----------------------------------------------------------------------===//

class SearcherFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SearcherFuzz, SoundOnRandomIllTypedPrograms) {
  // A program "fails" if the search emits an untriaged suggestion whose
  // applied form does not type-check. Used both as the property under
  // test and as the predicate driving counterexample minimization.
  auto HasUnsoundSuggestion = [](const Program &P) {
    if (typecheckProgram(P).ok())
      return false;
    SeminalOptions Opts;
    Opts.Search.MaxOracleCalls = 3000;
    SeminalReport Report = runSeminal(P, Opts);
    for (const auto &S : Report.Suggestions) {
      if (S.ViaTriage)
        continue;
      if (!typecheckProgram(S.Modified).ok())
        return true;
    }
    return false;
  };

  int Examined = 0;
  for (int I = 0; I < 200 && Examined < 25; ++I) {
    uint64_t Seed = uint64_t(GetParam()) * 65537 + 3 + uint64_t(I) * 999979;
    Rng R(Seed);
    Program P = randomProgram(R, 3, 3);
    if (typecheckProgram(P).ok())
      continue;
    ++Examined;
    SeminalOptions Opts;
    Opts.Search.MaxOracleCalls = 3000;
    SeminalReport Report = runSeminal(P, Opts);
    for (const auto &S : Report.Suggestions) {
      if (S.ViaTriage)
        continue;
      TypecheckResult TR = typecheckProgram(S.Modified);
      EXPECT_TRUE(TR.ok())
          << "unsound suggestion: " << renderSuggestion(S)
          << fuzzFailure(Seed, P, HasUnsoundSuggestion);
    }
  }
  EXPECT_GT(Examined, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SearcherFuzz, ::testing::Range(0, 4));

//===----------------------------------------------------------------------===//
// Adversarial oracles
//===----------------------------------------------------------------------===//

/// An oracle that answers according to a script, ignoring the program.
class ScriptedOracle : public Oracle {
public:
  enum class Mode { AlwaysNo, AlwaysYes, Random };
  explicit ScriptedOracle(Mode M, uint64_t Seed = 1) : TheMode(M), R(Seed) {}

  std::optional<TypeError>
  conventionalError(const Program &Prog) override {
    return std::nullopt;
  }

protected:
  bool typecheckImpl(const Program &Prog) override {
    switch (TheMode) {
    case Mode::AlwaysNo:
      return false;
    case Mode::AlwaysYes:
      return true;
    case Mode::Random:
      return R.chance(0.5);
    }
    return false;
  }
  std::optional<std::string> typeOfNodeImpl(const Program &Prog,
                                            const Expr *Node) override {
    return std::nullopt;
  }

private:
  Mode TheMode;
  Rng R;
};

TEST(AdversarialOracleTest, AlwaysYesBypassesSearch) {
  ScriptedOracle O(ScriptedOracle::Mode::AlwaysYes);
  SearchOptions Opts;
  Searcher S(O, Opts);
  ParseResult P = parseProgram("let x = 1 + true");
  SearchOutput Out = S.run(*P.Prog);
  EXPECT_TRUE(Out.InputTypechecks);
  EXPECT_TRUE(Out.Suggestions.empty());
}

TEST(AdversarialOracleTest, AlwaysNoTerminatesWithoutSuggestions) {
  ScriptedOracle O(ScriptedOracle::Mode::AlwaysNo);
  SearchOptions Opts;
  Opts.MaxOracleCalls = 2000;
  Searcher S(O, Opts);
  ParseResult P = parseProgram("let f x = x + 1\nlet y = f 1 2");
  SearchOutput Out = S.run(*P.Prog);
  // Nothing ever "type-checks", so no prefix is found failing-then-
  // passing and no change can succeed; the search must end cleanly.
  EXPECT_TRUE(Out.Suggestions.empty());
}

class RandomOracleFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RandomOracleFuzz, RandomOracleNeverBreaksTheSearcher) {
  ScriptedOracle O(ScriptedOracle::Mode::Random, uint64_t(GetParam()));
  SearchOptions Opts;
  Opts.MaxOracleCalls = 500;
  Searcher S(O, Opts);
  ParseResult P = parseProgram(
      "let go y =\n"
      "  let a = 3 + true in\n"
      "  match [a] with [] -> y | b :: t -> b + \"s\"\n");
  SearchOutput Out = S.run(*P.Prog);
  EXPECT_LE(O.callCount(), Opts.MaxOracleCalls + 2);
  // Whatever nonsense the oracle answered, suggestions carry coherent
  // payloads.
  for (const auto &S2 : Out.Suggestions) {
    EXPECT_FALSE(S2.Description.empty());
    EXPECT_LT(S2.Path.DeclIndex, P.Prog->Decls.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOracleFuzz, ::testing::Range(0, 6));

//===----------------------------------------------------------------------===//
// Slice-guided search identity
//===----------------------------------------------------------------------===//

class SliceGuideFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SliceGuideFuzz, GuidedSearchMatchesSliceRankedOnRandomPrograms) {
  // The error-slice pruning contract: slice-guided search must return the
  // bit-identical ranked suggestion list as a slice-ranked (no pruning)
  // run, while spending no more logical oracle calls. Budget-exhausted
  // runs are exempt from the identity check -- pruning legitimately
  // shifts where the cutoff lands.
  int Examined = 0;
  for (int I = 0; I < 200 && Examined < 25; ++I) {
    uint64_t Seed = uint64_t(GetParam()) * 92821 + 17 + uint64_t(I) * 999959;
    Rng R(Seed);
    Program P = randomProgram(R, 3, 3);
    if (typecheckProgram(P).ok())
      continue;
    ++Examined;

    SeminalOptions Ranked;
    Ranked.Search.ComputeSlice = true;
    Ranked.Search.MaxOracleCalls = 3000;
    SeminalOptions Guided = Ranked;
    Guided.Search.SliceGuided = true;

    SeminalReport RR = runSeminal(P, Ranked);
    SeminalReport RG = runSeminal(P, Guided);

    EXPECT_LE(RG.OracleCalls, RR.OracleCalls) << "seed " << Seed;
    if (RR.BudgetExhausted || RG.BudgetExhausted)
      continue;
    ASSERT_EQ(RG.Suggestions.size(), RR.Suggestions.size())
        << "seed " << Seed << "\n" << printProgram(P);
    for (size_t J = 0; J < RR.Suggestions.size(); ++J)
      EXPECT_EQ(renderSuggestion(RG.Suggestions[J]),
                renderSuggestion(RR.Suggestions[J]))
          << "seed " << Seed << ", rank " << J << "\n" << printProgram(P);
  }
  EXPECT_GT(Examined, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SliceGuideFuzz, ::testing::Range(0, 4));

TEST(BudgetTest, SearchIsIdempotentOnWorkingCopy) {
  // Running the search twice on the same program yields identical
  // suggestion sets: the in-place editing restores everything.
  std::string Src = "let go y =\n"
                    "  let a = 3 + true in\n"
                    "  let b = 4 + \"hi\" in\n"
                    "  y\n";
  SeminalReport R1 = runSeminalOnSource(Src);
  SeminalReport R2 = runSeminalOnSource(Src);
  ASSERT_EQ(R1.Suggestions.size(), R2.Suggestions.size());
  for (size_t I = 0; I < R1.Suggestions.size(); ++I) {
    EXPECT_EQ(renderSuggestion(R1.Suggestions[I]),
              renderSuggestion(R2.Suggestions[I]));
  }
  EXPECT_EQ(R1.OracleCalls, R2.OracleCalls);
}

} // namespace
