//===- ObsTest.cpp - Tests for the outcome-telemetry subsystem ------------==//
//
// The outcome half of the observability stack (DESIGN.md section 10)
// carries the same two contracts as the trace half:
//
//   1. Observational purity: attaching a TelemetrySink changes nothing
//      about the search -- suggestions and logical-call counts are
//      byte-identical with the sink attached or not.
//   2. Faithfulness: the RunReport mirrors the run it distills (ranked
//      suggestions, winning layer, effort counters), the per-layer
//      tallies add up, and every serialized artifact -- RunReport JSON,
//      aggregate snapshot, explorer HTML -- is well-formed and
//      self-contained.
//
//===----------------------------------------------------------------------==//

#include "JsonTestUtil.h"
#include "core/Seminal.h"
#include "minicaml/Printer.h"
#include "obs/Aggregate.h"
#include "obs/Explorer.h"
#include "obs/RunReport.h"
#include "obs/Telemetry.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace seminal;

namespace {

/// The Figure 2 program: exercises localization, adaptation, and
/// constructive candidates.
const char *Fig2 =
    "let map2 f aList bList =\n"
    "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
    "let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n"
    "let ans = List.filter (fun x -> x == 0) lst\n";

/// Two independent errors: forces triage.
const char *TwoErrors = "let go y =\n"
                        "  let a = 3 + true in\n"
                        "  let b = 4 + \"hi\" in\n"
                        "  y + 1";

std::string suggestionDigest(const SeminalReport &R) {
  std::string Out;
  for (const Suggestion &S : R.Suggestions) {
    Out += std::to_string(int(S.Kind)) + "/" + S.Path.str() + "/";
    if (S.Original)
      Out += caml::printExpr(*S.Original);
    Out += "=>";
    if (S.Replacement)
      Out += caml::printExpr(*S.Replacement);
    Out += "/" + S.Description + ";";
  }
  return Out;
}

obs::CandidateOutcome makeOutcome(const char *Layer, const char *Kind,
                                  bool Verdict, bool Pruned = false,
                                  int Rank = 0) {
  obs::CandidateOutcome O;
  O.Layer = Layer;
  O.Kind = Kind;
  O.Verdict = Verdict;
  O.Pruned = Pruned;
  O.Rank = Rank;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===//
// TelemetrySink mechanics
//===----------------------------------------------------------------------===//

TEST(TelemetrySinkTest, RecordsInOrderAndClears) {
  obs::TelemetrySink Sink;
  EXPECT_EQ(Sink.size(), 0u);

  Sink.record(makeOutcome("removal", "probe", false));
  Sink.record(makeOutcome("constructive", "constructive", true));
  EXPECT_EQ(Sink.size(), 2u);

  std::vector<obs::CandidateOutcome> Records = Sink.snapshot();
  ASSERT_EQ(Records.size(), 2u);
  EXPECT_EQ(Records[0].Layer, "removal");
  EXPECT_FALSE(Records[0].Verdict);
  EXPECT_EQ(Records[1].Layer, "constructive");
  EXPECT_TRUE(Records[1].Verdict);

  Sink.clear();
  EXPECT_EQ(Sink.size(), 0u);
  EXPECT_TRUE(Sink.snapshot().empty());
}

TEST(TelemetrySinkTest, LayerStatsTallyTriedSucceededPruned) {
  obs::TelemetrySink Sink;
  Sink.record(makeOutcome("adaptation", "adaptation", false));
  Sink.record(makeOutcome("adaptation", "adaptation", true));
  Sink.record(makeOutcome("adaptation", "adaptation", false,
                          /*Pruned=*/true));

  auto Stats = Sink.layerStats();
  ASSERT_TRUE(Stats.count("adaptation"));
  EXPECT_EQ(Stats["adaptation"].Tried, 2u);
  EXPECT_EQ(Stats["adaptation"].Succeeded, 1u);
  EXPECT_EQ(Stats["adaptation"].Pruned, 1u);
}

TEST(TelemetrySinkTest, LayerStatsExcludePostRankingSuggestionRecords) {
  obs::TelemetrySink Sink;
  Sink.record(makeOutcome("constructive", "constructive", true));
  // Post-ranking duplicates of outcomes already counted under their
  // issuing layer must not inflate the tallies.
  Sink.record(makeOutcome("suggestion", "constructive", true,
                          /*Pruned=*/false, /*Rank=*/1));
  Sink.record(makeOutcome("suggestion", "removal", true,
                          /*Pruned=*/false, /*Rank=*/2));

  auto Stats = Sink.layerStats();
  EXPECT_EQ(Stats.count("suggestion"), 0u);
  EXPECT_EQ(Stats["constructive"].Tried, 1u);
}

//===----------------------------------------------------------------------===//
// Contract 1: telemetry is observational only
//===----------------------------------------------------------------------===//

TEST(ObsPurityTest, SuggestionsIdenticalWithTelemetryOnAndOff) {
  for (const char *Source : {Fig2, TwoErrors}) {
    SeminalReport Plain = runSeminalOnSource(Source);

    obs::TelemetrySink Sink;
    SeminalOptions Opts;
    Opts.Search.Telemetry = &Sink;
    SeminalReport Observed = runSeminalOnSource(Source, Opts);

    EXPECT_EQ(suggestionDigest(Plain), suggestionDigest(Observed));
    EXPECT_EQ(Plain.OracleCalls, Observed.OracleCalls);
    EXPECT_EQ(Plain.InferenceRuns, Observed.InferenceRuns);
    EXPECT_GT(Sink.size(), 0u);
  }
}

//===----------------------------------------------------------------------===//
// Contract 2: the RunReport mirrors the run
//===----------------------------------------------------------------------===//

TEST(RunReportTest, FillRunReportMirrorsTheRun) {
  obs::TelemetrySink Sink;
  SeminalOptions Opts;
  Opts.Search.Telemetry = &Sink;
  SeminalReport Report = runSeminalOnSource(Fig2, Opts);
  ASSERT_FALSE(Report.Suggestions.empty());

  obs::RunReport R;
  fillRunReport(R, Report, &Sink, 1.25);

  EXPECT_TRUE(R.Parsed);
  EXPECT_FALSE(R.InputTypechecks);
  ASSERT_EQ(R.Suggestions.size(), Report.Suggestions.size());
  for (size_t I = 0; I < R.Suggestions.size(); ++I) {
    EXPECT_EQ(R.Suggestions[I].Rank, int(I) + 1);
    EXPECT_EQ(R.Suggestions[I].Layer,
              suggestionLayer(Report.Suggestions[I]));
  }
  EXPECT_EQ(R.WinningLayer, R.Suggestions.front().Layer);
  EXPECT_EQ(R.OracleCalls, Report.OracleCalls);
  EXPECT_EQ(R.InferenceRuns, Report.InferenceRuns);
  EXPECT_DOUBLE_EQ(R.WallSeconds, 1.25);
  EXPECT_FALSE(R.Layers.empty());

  // The sink carries one post-ranking record per ranked suggestion,
  // 1-based in rank order.
  std::vector<int> Ranks;
  for (const obs::CandidateOutcome &O : Sink.snapshot())
    if (O.Rank > 0)
      Ranks.push_back(O.Rank);
  ASSERT_EQ(Ranks.size(), Report.Suggestions.size());
  for (size_t I = 0; I < Ranks.size(); ++I)
    EXPECT_EQ(Ranks[I], int(I) + 1);
}

TEST(RunReportTest, CompactJsonIsValidAndSingleLine) {
  obs::TelemetrySink Sink;
  SeminalOptions Opts;
  Opts.Search.Telemetry = &Sink;
  SeminalReport Report = runSeminalOnSource(Fig2, Opts);

  obs::RunReport R;
  R.ProgramId = "fig2";
  fillRunReport(R, Report, &Sink);

  std::ostringstream Compact;
  R.writeJson(Compact);
  EXPECT_TRUE(JsonValidator(Compact.str()).valid()) << Compact.str();
  EXPECT_EQ(Compact.str().find('\n'), std::string::npos)
      << "JSONL records must be one line";
  EXPECT_NE(Compact.str().find("\"schema_version\""), std::string::npos);

  std::ostringstream Pretty;
  R.writeJson(Pretty, /*Pretty=*/true);
  EXPECT_TRUE(JsonValidator(Pretty.str()).valid());
}

TEST(RunReportTest, EscapesHostileStrings) {
  obs::RunReport R;
  R.ProgramId = "a\"b\\c\nd\te\x01";
  R.MutationKinds.push_back("</script>");
  obs::SuggestionOutcome S;
  S.Rank = 1;
  S.Description = "replace \"x\"\nwith y";
  R.Suggestions.push_back(S);

  std::ostringstream OS;
  R.writeJson(OS);
  EXPECT_TRUE(JsonValidator(OS.str()).valid()) << OS.str();
  EXPECT_EQ(OS.str().find('\n'), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Aggregate snapshot
//===----------------------------------------------------------------------===//

TEST(AggregateTest, SnapshotJsonIsValidAndFoldsReports) {
  obs::RunReport A;
  A.Bucket = 3; // ours strictly better
  A.QualityChecker = "poor";
  A.QualityOurs = "accurate";
  A.QualityNoTriage = "accurate";
  A.RankOfTrueFix = 1;
  A.WinningLayer = "constructive";
  obs::SuggestionOutcome SA;
  SA.Rank = 1;
  A.Suggestions.push_back(SA);
  A.OracleCalls = 100;

  obs::RunReport B;
  B.Bucket = 5; // checker strictly better
  B.QualityChecker = "accurate";
  B.QualityOurs = "poor";
  B.QualityNoTriage = "poor";
  B.RankOfTrueFix = 0;
  B.OracleCalls = 50; // no suggestions at all

  obs::TelemetryAggregate Agg;
  Agg.add(A);
  Agg.add(B);
  EXPECT_EQ(Agg.files(), 2u);

  obs::SnapshotInfo Info;
  Info.Scale = 0.5;
  Info.Seed = 42;
  std::ostringstream OS;
  Agg.writeSnapshotJson(OS, Info);
  std::string Json = OS.str();

  EXPECT_TRUE(JsonValidator(Json).valid()) << Json;
  EXPECT_NE(Json.find("\"bench\": \"telemetry\""), std::string::npos);
  EXPECT_NE(Json.find("\"files\": 2"), std::string::npos);
  EXPECT_NE(Json.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(Json.find("\"oracle_calls\": 150"), std::string::npos);
  // One bucket-2 file and one bucket-5 file, 50% each.
  EXPECT_NE(Json.find("\"ours_better_pct\": 50.0000"), std::string::npos);
  EXPECT_NE(Json.find("\"checker_better_pct\": 50.0000"),
            std::string::npos);
  EXPECT_NE(Json.find("\"no_suggestion\": 1"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Explorer HTML
//===----------------------------------------------------------------------===//

TEST(ExplorerTest, SelfContainedHtmlWithAllSections) {
  TraceSink Trace;
  obs::TelemetrySink Sink;
  SeminalOptions Opts;
  Opts.Search.Trace = &Trace;
  Opts.Search.Telemetry = &Sink;
  SeminalReport Report = runSeminalOnSource(Fig2, Opts);

  obs::RunReport R;
  R.ProgramId = "fig2";
  fillRunReport(R, Report, &Sink);

  std::ostringstream OS;
  obs::writeExplorerHtml(OS, Trace.snapshot(), R, Fig2);
  std::string Html = OS.str();

  // All four sections (plus the source panel) are present.
  for (const char *Anchor :
       {"id=\"tiles\"", "id=\"sugg\"", "id=\"tree\"",
        "id=\"timeline-box\"", "id=\"slice\"", "id=\"src\""})
    EXPECT_NE(Html.find(Anchor), std::string::npos) << Anchor;

  // Self-contained: no external fetches of any kind. (The SVG namespace
  // URI string is an identifier, not a fetch, so "http://" alone is not
  // checked.)
  for (const char *Fetch : {"src=\"http", "href=", "<link", "<img",
                            "@import", "fetch(", "XMLHttpRequest"})
    EXPECT_EQ(Html.find(Fetch), std::string::npos) << Fetch;

  // The embedded DATA document is present and parses as JSON once the
  // \u003c HTML-safety escaping is undone by the JSON parser.
  size_t DataPos = Html.find("const DATA = ");
  ASSERT_NE(DataPos, std::string::npos);
}

TEST(ExplorerTest, EmbeddedDataCannotCloseItsScriptTag) {
  obs::RunReport R;
  R.ProgramId = "hostile";
  std::string Source = "let x = 1 (* </script><script>alert(1) *)";

  std::ostringstream OS;
  obs::writeExplorerHtml(OS, {}, R, Source);
  std::string Html = OS.str();

  // The hostile close-tag inside the data must be \u003c-escaped, never
  // emitted raw.
  EXPECT_EQ(Html.find("</script><script>alert"), std::string::npos);
  EXPECT_NE(Html.find("\\u003c/script"), std::string::npos);
}
