//===- AccelTest.cpp - Oracle acceleration equivalence tests ---------------==//
//
// The acceleration layer must be invisible: any combination of prefix
// checkpointing, verdict caching, and parallel batching has to reproduce
// the plain oracle's searches bit for bit -- same suggestions in the same
// ranked order, same logical-call totals -- while doing strictly less
// inference. These tests pin that contract at three levels: the
// InferenceCheckpoint primitive (rollback correctness), the
// CheckpointedOracle (cache accounting), and whole runSeminal searches
// across every acceleration configuration.
//
//===----------------------------------------------------------------------===//

#include "core/CheckpointedOracle.h"
#include "core/Seminal.h"
#include "minicaml/Hash.h"
#include "minicaml/Parser.h"
#include "minicaml/Printer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace seminal;
using namespace seminal::caml;

namespace {

Program parse(const std::string &Source) {
  ParseResult R = parseProgram(Source);
  EXPECT_TRUE(R.ok()) << Source;
  return std::move(*R.Prog);
}

/// The searcher scenarios from SearcherTest.cpp (paper examples, triage
/// batteries, mutated fragments) plus a multi-error triage case; the
/// equivalence tests replay each under every acceleration configuration.
const char *ScenarioSources[] = {
    // Paper examples.
    "let map2 f aList bList =\n"
    "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
    "let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n"
    "let ans = List.filter (fun x -> x == 0) lst\n",
    "let add str lst = if List.mem str lst then lst\n"
    "                  else str :: lst\n"
    "let vList1 = [\"a\"; \"b\"]\n"
    "let s = \"c\"\n"
    "let out = add vList1 s\n",
    "let e1 x = x ^ \"!\"\nlet e2 = \"s\"\nlet t = if e1 e2 then 1 else 2\n",
    "let f y =\n"
    "  let x = \"oops\" in\n"
    "  (x + 1) + (x + 2) + (x + 3) + (x + 4)\n",
    "let f x = print x; x + 1\n",
    // Localization with later broken declarations.
    "let a = 1\nlet b = a + true\nlet c = 1 + \"x\"",
    // Triage: multiple independent errors.
    "let go y =\n"
    "  let x = 3 + true in\n"
    "  let z = y + 1 in\n"
    "  let w = 4 + \"hi\" in\n"
    "  z\n",
    "let f x y =\n"
    "  let n = List.length y in\n"
    "  match (x, y) with\n"
    "    (0, []) -> []\n"
    "  | (m, []) -> m\n"
    "  | (_, 5) -> 5 + \"hi\"\n",
    "let f a =\n"
    "  match (a + \"x\", a) with\n"
    "    (_, 0) -> 1 + true\n"
    "  | _ -> 2 + \"y\"\n",
    // Soundness-battery fragments.
    "let x = 1 + \"two\"",
    "let f (x, y) = x + y\nlet z = f 1 2",
    "let f x y = x + y\nlet z = f (1, 2)",
    "let x = [1, 2, 3]\nlet y = List.map (fun v -> v + 1) x",
    "let r = ref 0\nlet y = r + 1",
    "let l = 1 :: 2",
    "let f x = x ^ \"!\"\nlet y = f 3",
    "let swap (a, b) = (b, a)\nlet p = swap 1 2",
    "let f a b c = a + b + c\nlet x = f 1 2 + 3",
    "let x = (1, 2)\nlet y = fst x + snd x + x",
};

/// Byte-exact fingerprint of a ranked report: everything a suggestion
/// carries that is visible to ranking, rendering, or callers.
std::string fingerprint(const SeminalReport &R) {
  std::string Out;
  Out += "typechecks=" + std::to_string(R.InputTypechecks);
  Out += " failing=" +
         (R.FailingDeclIndex ? std::to_string(*R.FailingDeclIndex)
                             : std::string("none"));
  Out += " budget=" + std::to_string(R.BudgetExhausted);
  Out += "\n";
  for (const Suggestion &S : R.Suggestions) {
    Out += "[" + std::to_string(int(S.Kind)) + "/" + S.Path.str() + "/p" +
           std::to_string(S.Priority) + "/t" +
           std::to_string(S.TriageRemovals) + "] ";
    if (S.Original)
      Out += printExpr(*S.Original);
    Out += " => ";
    if (S.Replacement)
      Out += printExpr(*S.Replacement);
    Out += " :: " + S.ReplacementType.value_or("-");
    Out += " :: " + S.Description;
    Out += " :: " + S.PatternBefore + "/" + S.PatternAfter;
    Out += " :: ctx " + S.ContextAfter;
    Out += " :: " + std::to_string(hashProgram(S.Modified));
    Out += "\n";
    Out += renderSuggestion(S) + "\n";
  }
  return Out;
}

SeminalOptions withAccel(bool Checkpoint, bool VerdictCache,
                         bool ParallelBatch) {
  SeminalOptions Opts;
  Opts.Search.Accel.Checkpoint = Checkpoint;
  Opts.Search.Accel.VerdictCache = VerdictCache;
  Opts.Search.Accel.ParallelBatch = ParallelBatch;
  Opts.Search.Accel.Threads = ParallelBatch ? 4 : 0;
  return Opts;
}

//===----------------------------------------------------------------------===//
// InferenceCheckpoint: rollback correctness
//===----------------------------------------------------------------------===//

TEST(CheckpointTest, MatchesFullInferenceOnEveryPrefix) {
  for (const char *Src : ScenarioSources) {
    Program P = parse(Src);
    for (unsigned K = 0; K < P.Decls.size(); ++K) {
      if (P.Decls[K]->kind() != Decl::Kind::Let)
        continue;
      // Full-inference ground truth for "first K decls + decl K".
      Program Slice;
      for (unsigned I = 0; I <= K; ++I)
        Slice.Decls.push_back(P.Decls[I]->clone());
      bool Expected = typecheckProgram(Slice).ok();

      auto CP = InferenceCheckpoint::create(P, K);
      if (!CP) {
        // The prefix itself fails; create() must refuse exactly then.
        Program Prefix;
        for (unsigned I = 0; I < K; ++I)
          Prefix.Decls.push_back(P.Decls[I]->clone());
        EXPECT_FALSE(typecheckProgram(Prefix).ok()) << Src;
        continue;
      }
      // Ask three times: rollback must keep the verdict stable.
      for (int Round = 0; Round < 3; ++Round)
        EXPECT_EQ(CP->checkDecl(*P.Decls[K]).ok(), Expected)
            << Src << "\nprefix " << K << " round " << Round;
    }
  }
}

TEST(CheckpointTest, ValueRestrictionStateRollsBack) {
  // `r : '_a list ref` is weakly polymorphic; checking `r := [1]` pins
  // '_a to int *within that query*. Rollback must unpin it, or the
  // subsequent string assignment would wrongly fail.
  Program P = parse("let r = ref []\nlet u = r := [1]");
  auto CP = InferenceCheckpoint::create(P, 1);
  ASSERT_NE(CP, nullptr);
  Program IntUse = parse("let u = r := [1]");
  Program StrUse = parse("let v = r := [\"s\"]");
  EXPECT_TRUE(CP->checkDecl(*IntUse.Decls[0]).ok());
  EXPECT_TRUE(CP->checkDecl(*StrUse.Decls[0]).ok())
      << "int pin leaked through the checkpoint";
  EXPECT_TRUE(CP->checkDecl(*IntUse.Decls[0]).ok());
  // Both at once genuinely conflict; the checkpoint must still say no.
  Program Both = parse("let w = (r := [1]; r := [\"s\"])");
  EXPECT_FALSE(CP->checkDecl(*Both.Decls[0]).ok());
  EXPECT_TRUE(CP->checkDecl(*StrUse.Decls[0]).ok());
}

TEST(CheckpointTest, GeneralizationSurvivesFailedQueries) {
  // A failing query must not corrupt the polymorphism of prefix bindings.
  Program P = parse("let id x = x\nlet a = id 1");
  auto CP = InferenceCheckpoint::create(P, 1);
  ASSERT_NE(CP, nullptr);
  Program Bad = parse("let c = id 1 ^ \"x\"");
  Program IntUse = parse("let a = id 1 + 2");
  Program StrUse = parse("let b = id \"s\" ^ \"t\"");
  EXPECT_FALSE(CP->checkDecl(*Bad.Decls[0]).ok());
  EXPECT_TRUE(CP->checkDecl(*IntUse.Decls[0]).ok());
  EXPECT_TRUE(CP->checkDecl(*StrUse.Decls[0]).ok());
}

TEST(CheckpointTest, ArenaDoesNotGrowAcrossQueries) {
  Program P = parse("let f x y = x + y\nlet z = f 1");
  auto CP = InferenceCheckpoint::create(P, 1);
  ASSERT_NE(CP, nullptr);
  TypecheckResult First = CP->checkDecl(*P.Decls[1]);
  for (int I = 0; I < 100; ++I) {
    TypecheckResult R = CP->checkDecl(*P.Decls[1]);
    EXPECT_EQ(R.TypesAllocated, First.TypesAllocated)
        << "arena rewind is leaking allocations (round " << I << ")";
  }
}

TEST(CheckpointTest, QueryNodeTypeMatchesFullInference) {
  Program P = parse("let one = 1\nlet f x = x + one");
  const Expr *Node = P.Decls[1]->Rhs.get();
  TypecheckOptions Opts;
  Opts.QueryNode = Node;
  TypecheckResult Full = typecheckProgram(P, Opts);
  ASSERT_TRUE(Full.ok());
  ASSERT_TRUE(Full.QueriedType.has_value());

  auto CP = InferenceCheckpoint::create(P, 1);
  ASSERT_NE(CP, nullptr);
  TypecheckResult Inc = CP->checkDecl(*P.Decls[1], Opts);
  ASSERT_TRUE(Inc.ok());
  EXPECT_EQ(Inc.QueriedType, Full.QueriedType);
}

//===----------------------------------------------------------------------===//
// CheckpointedOracle: accounting
//===----------------------------------------------------------------------===//

TEST(CheckpointedOracleTest, CacheHitsKeepLogicalCallsButSkipInference) {
  Program P = parse("let a = 1\nlet b = a + true");
  CheckpointedOracle O;
  O.seedPrefix(P, 1);
  bool First = O.typechecks(P);
  for (int I = 0; I < 3; ++I)
    EXPECT_EQ(O.typechecks(P), First);
  EXPECT_EQ(O.logicalCalls(), 4u);
  EXPECT_EQ(O.callCount(), 4u); // Legacy alias agrees.
  EXPECT_EQ(O.counters().CacheHits, 3u);
  EXPECT_EQ(O.counters().CacheMisses, 1u);
  EXPECT_EQ(O.inferenceRuns(), 1u);
  O.clearPrefix();
  // Cache is keyed on the seed; clearing forgets the verdicts.
  O.typechecks(P);
  EXPECT_EQ(O.counters().CacheHits, 3u);
}

TEST(CheckpointedOracleTest, UnseededFallsBackToFullInference) {
  // Two declarations with no growth history match neither the seed nor
  // the growing-prefix pattern: a plain full inference.
  Program P = parse("let a = 1\nlet x = a + \"two\"");
  CheckpointedOracle O;
  EXPECT_FALSE(O.typechecks(P));
  EXPECT_EQ(O.counters().FullInferences, 1u);
  EXPECT_EQ(O.counters().IncrementalInferences, 0u);
  EXPECT_EQ(O.inferenceRuns(), O.logicalCalls());
}

TEST(CheckpointedOracleTest, LocalizationPatternIsServedIncrementally) {
  // The searcher's prefix-localization loop: ask about prefixes of
  // growing length. Every round should extend the growth environment
  // instead of running whole-program inference.
  Program P = parse("let a = 1\nlet b = a + 1\nlet c = b + 2\n"
                    "let d = c ^ \"s\"");
  CheckpointedOracle O;
  for (unsigned Len = 1; Len <= P.Decls.size(); ++Len) {
    Program Prefix;
    for (unsigned I = 0; I < Len; ++I)
      Prefix.Decls.push_back(P.Decls[I]->clone());
    Program Truth;
    for (unsigned I = 0; I < Len; ++I)
      Truth.Decls.push_back(P.Decls[I]->clone());
    EXPECT_EQ(O.typechecks(Prefix), caml::typecheckProgram(Truth).ok())
        << "prefix length " << Len;
  }
  EXPECT_EQ(O.counters().FullInferences, 0u);
  EXPECT_EQ(O.counters().IncrementalInferences, P.Decls.size());
  // Each round re-checked only the new declaration: 0+1+2+3 skipped.
  EXPECT_EQ(O.counters().DeclInferencesSaved, 0u + 1u + 2u + 3u);
}

TEST(CheckpointTest, ExtendWithCommitsOnSuccessAndRollsBackOnFailure) {
  Program P = parse("let a = 1\nlet b = a + 1\nlet c = b ^ \"s\"\n"
                    "let d = a + 2");
  auto CP = InferenceCheckpoint::create(P, 0);
  ASSERT_TRUE(CP);
  // Committing declarations one at a time tracks full-inference prefix
  // verdicts exactly.
  ASSERT_TRUE(CP->extendWith(*P.Decls[0]));
  EXPECT_EQ(CP->prefixLength(), 1u);
  size_t Allocated = 0;
  ASSERT_TRUE(CP->extendWith(*P.Decls[1], &Allocated));
  EXPECT_GT(Allocated, 0u);
  EXPECT_EQ(CP->prefixLength(), 2u);
  // A failed Let rolls back completely: the prefix is unchanged and the
  // checkpoint keeps answering queries correctly.
  EXPECT_FALSE(CP->extendWith(*P.Decls[2]));
  EXPECT_EQ(CP->prefixLength(), 2u);
  TypecheckResult R = CP->checkDecl(*P.Decls[3]);
  EXPECT_TRUE(R.ok());
  EXPECT_FALSE(CP->checkDecl(*P.Decls[2]).ok());
  // And the environment can still grow past the failure.
  ASSERT_TRUE(CP->extendWith(*P.Decls[3]));
  EXPECT_EQ(CP->prefixLength(), 3u);
}

TEST(CheckpointedOracleTest, VerdictsMatchPlainOracleEverywhere) {
  for (const char *Src : ScenarioSources) {
    Program P = parse(Src);
    CamlOracle Plain;
    CheckpointedOracle Fast;
    if (P.Decls.size() > 1)
      Fast.seedPrefix(P, unsigned(P.Decls.size() - 1));
    EXPECT_EQ(Fast.typechecks(P), Plain.typechecks(P)) << Src;
  }
}

TEST(CheckpointedOracleTest, BatchMatchesSequentialVerdicts) {
  Program P = parse("let one = 1\nlet x = one + \"two\"");
  NodePath Path(1);
  Path.Steps = {1}; // The right operand of `one + "two"`.
  ASSERT_NE(resolvePath(P, Path), nullptr);

  std::vector<ExprPtr> Owned;
  Owned.push_back(makeIntLit(2));         // fixes the program
  Owned.push_back(makeStringLit("s"));    // still broken
  Owned.push_back(makeIntLit(2));         // duplicate of [0]
  Owned.push_back(makeWildcard());        // always checks
  std::vector<const Expr *> Reps;
  for (const auto &E : Owned)
    Reps.push_back(E.get());

  OracleAccelOptions Accel;
  Accel.ParallelBatch = true;
  Accel.Threads = 3;
  CheckpointedOracle O(Accel);
  ASSERT_TRUE(O.supportsBatch());
  O.seedPrefix(P, 1);
  std::vector<bool> Got = O.typecheckBatch(P, Path, Reps);
  EXPECT_EQ(O.logicalCalls(), Reps.size());

  CamlOracle Plain;
  std::vector<bool> Want = Plain.typecheckBatch(P, Path, Reps);
  EXPECT_EQ(Got, Want);
  EXPECT_TRUE(Want[0] && !Want[1] && Want[2] && Want[3]);
  // The duplicate and nothing else is deduped: 3 distinct candidates.
  EXPECT_EQ(O.counters().CacheMisses, 3u);
  EXPECT_EQ(O.counters().CacheHits, 1u);
}

//===----------------------------------------------------------------------===//
// Whole-search equivalence across acceleration configurations
//===----------------------------------------------------------------------===//

struct AccelConfig {
  const char *Name;
  bool Checkpoint, VerdictCache, ParallelBatch;
};

const AccelConfig Configs[] = {
    {"checkpoint-only", true, false, false},
    {"cache-only", false, true, false},
    {"checkpoint+cache", true, true, false},
    {"parallel-only", false, false, true},
    {"all-layers", true, true, true},
};

TEST(AccelEquivalenceTest, AllConfigsReproduceTheUnacceleratedSearch) {
  for (const char *Src : ScenarioSources) {
    SeminalReport Base =
        runSeminalOnSource(Src, withAccel(false, false, false));
    std::string BaseFp = fingerprint(Base);
    EXPECT_EQ(Base.InferenceRuns, Base.OracleCalls) << Src;

    for (const AccelConfig &C : Configs) {
      SeminalReport R = runSeminalOnSource(
          Src, withAccel(C.Checkpoint, C.VerdictCache, C.ParallelBatch));
      EXPECT_EQ(fingerprint(R), BaseFp) << C.Name << " on:\n" << Src;
      EXPECT_EQ(R.OracleCalls, Base.OracleCalls)
          << C.Name << " changed the logical-call count on:\n" << Src;
      EXPECT_LE(R.InferenceRuns, R.OracleCalls) << C.Name;
      if (C.VerdictCache || C.Checkpoint)
        EXPECT_LE(R.InferenceRuns, Base.InferenceRuns) << C.Name;
    }
  }
}

TEST(AccelEquivalenceTest, DefaultConfigDoesStrictlyLessInference) {
  // On a triage-heavy search (wildcard placements are revisited across
  // phases) the checkpoint+cache default must actually save work, not
  // merely tie: cache hits make InferenceRuns < OracleCalls.
  SeminalReport R = runSeminalOnSource("let go y =\n"
                                       "  let x = 3 + true in\n"
                                       "  let z = y + 1 in\n"
                                       "  let w = 4 + \"hi\" in\n"
                                       "  z\n");
  EXPECT_GT(R.OracleCalls, 0u);
  EXPECT_LT(R.InferenceRuns, R.OracleCalls);
  EXPECT_GT(R.Accel.CacheHits, 0u);
  EXPECT_GT(R.Accel.IncrementalInferences, 0u);

  // And on a deep-prefix program the checkpoint skips prefix re-checks.
  SeminalReport R2 = runSeminalOnSource(
      "let a = 1\nlet b = a + 1\nlet c = b + 1\nlet d = c + true\n");
  EXPECT_GT(R2.Accel.DeclInferencesSaved, 0u);
}

TEST(AccelEquivalenceTest, TriageHeavyCaseIsDeterministicUnderParallelism) {
  // The multi-error triage scenario exercises batched waves inside triage
  // contexts; run it repeatedly to shake out scheduling nondeterminism.
  const char *Src = "let go y =\n"
                    "  let x = 3 + true in\n"
                    "  let z = y + 1 in\n"
                    "  let w = 4 + \"hi\" in\n"
                    "  z\n";
  SeminalReport Base = runSeminalOnSource(Src, withAccel(false, false, false));
  std::string BaseFp = fingerprint(Base);
  for (int Round = 0; Round < 5; ++Round) {
    SeminalReport R = runSeminalOnSource(Src, withAccel(true, true, true));
    EXPECT_EQ(fingerprint(R), BaseFp) << "round " << Round;
    EXPECT_EQ(R.OracleCalls, Base.OracleCalls) << "round " << Round;
  }
}

} // namespace
