//===- MessageTest.cpp - Tests for message rendering ------------------------==//
//
// The messages ARE the product (the paper's title is about them); these
// tests pin the exact presentation: the paper's "Try replacing X with Y
// of type T within context C" format, the [[...]] hole form for
// removals and adaptations, triage framing, and the unbound-variable
// note.
//
//===----------------------------------------------------------------------===//

#include "core/Message.h"
#include "core/Seminal.h"
#include "minicaml/Parser.h"

#include <gtest/gtest.h>

using namespace seminal;
using namespace seminal::caml;

namespace {

Suggestion makeBasicSuggestion() {
  Suggestion S;
  S.Kind = ChangeKind::Constructive;
  S.Original = parseExpression("f (a, b)").E;
  S.Replacement = parseExpression("f a b").E;
  S.Description = "curry";
  S.OriginalSize = 4;
  S.ReplacementSize = 4;
  S.ReplacementType = "int";
  S.ContextAfter = "let x = f a b";
  return S;
}

TEST(MessageTest, ConstructiveFormat) {
  std::string Msg = renderSuggestion(makeBasicSuggestion());
  EXPECT_NE(Msg.find("Try replacing\n    f (a, b)"), std::string::npos)
      << Msg;
  EXPECT_NE(Msg.find("with\n    f a b"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("of type int"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("within context\n    let x = f a b"),
            std::string::npos)
      << Msg;
}

TEST(MessageTest, RemovalRendersHole) {
  Suggestion S = makeBasicSuggestion();
  S.Kind = ChangeKind::Removal;
  S.Replacement = makeWildcard();
  std::string Msg = renderSuggestion(S);
  EXPECT_NE(Msg.find("with\n    [[...]]"), std::string::npos) << Msg;
}

TEST(MessageTest, AdaptationRendersHoleAndNote) {
  Suggestion S = makeBasicSuggestion();
  S.Kind = ChangeKind::Adaptation;
  std::string Msg = renderSuggestion(S);
  EXPECT_NE(Msg.find("[[...]]"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("type-checks on its own"), std::string::npos) << Msg;
}

TEST(MessageTest, TriageFraming) {
  Suggestion S = makeBasicSuggestion();
  S.ViaTriage = true;
  S.TriageRemovals = 2;
  std::string Msg = renderSuggestion(S);
  EXPECT_NE(Msg.find("Your code has several type errors"),
            std::string::npos)
      << Msg;
  EXPECT_NE(Msg.find("2 subexpression(s) set aside"), std::string::npos)
      << Msg;
  EXPECT_NE(Msg.find("other type errors remain"), std::string::npos) << Msg;
}

TEST(MessageTest, TriageWithoutRemovalsOmitsTheCount) {
  Suggestion S = makeBasicSuggestion();
  S.ViaTriage = true;
  S.TriageRemovals = 0;
  std::string Msg = renderSuggestion(S);
  EXPECT_EQ(Msg.find("set aside"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("ignore the surrounding code"), std::string::npos)
      << Msg;
}

TEST(MessageTest, PatternFixFormat) {
  Suggestion S;
  S.Kind = ChangeKind::PatternFix;
  S.ViaTriage = true;
  S.PatternBefore = "5";
  S.PatternAfter = "_";
  S.ContextAfter = "let f = ...";
  std::string Msg = renderSuggestion(S);
  EXPECT_NE(Msg.find("replacing the pattern 5 with _"), std::string::npos)
      << Msg;
}

TEST(MessageTest, UnboundVariableNote) {
  Suggestion S = makeBasicSuggestion();
  S.Kind = ChangeKind::Removal;
  S.Original = parseExpression("print").E;
  S.Replacement = makeWildcard();
  S.LikelyUnboundVariable = true;
  std::string Msg = renderSuggestion(S);
  EXPECT_NE(Msg.find("appears to be unbound"), std::string::npos) << Msg;
}

TEST(MessageTest, DeclChangeFormat) {
  Suggestion S;
  S.Kind = ChangeKind::Constructive;
  S.Description = "make the function recursive";
  S.ContextAfter = "let rec len xs = ...";
  std::string Msg = renderSuggestion(S);
  EXPECT_NE(Msg.find("make the function recursive"), std::string::npos)
      << Msg;
  EXPECT_NE(Msg.find("let rec len"), std::string::npos) << Msg;
}

TEST(MessageTest, LongContextsAreEllipsized) {
  Suggestion S = makeBasicSuggestion();
  S.ContextAfter = std::string(1000, 'x');
  MessageOptions Opts;
  Opts.MaxContextLength = 50;
  std::string Msg = renderSuggestion(S, Opts);
  EXPECT_LT(Msg.size(), 400u);
  EXPECT_NE(Msg.find("..."), std::string::npos);
}

TEST(MessageTest, ConventionalRendering) {
  TypeError E;
  E.Span = SourceSpan(SourceLoc(3, 7, 42), 50);
  E.Message = "This expression has type int but is here used with type "
              "string";
  EXPECT_EQ(renderConventional(E),
            "line 3, column 7: This expression has type int but is here "
            "used with type string");
  EXPECT_EQ(renderConventional(std::nullopt), "No type errors.");
}

TEST(MessageTest, BestMessageFallbacks) {
  SeminalReport Empty;
  Empty.InputTypechecks = true;
  EXPECT_EQ(Empty.bestMessage(), "No type errors.");

  SeminalReport NoSuggestions;
  TypeError E;
  E.Span = SourceSpan(SourceLoc(1, 1, 0), 3);
  E.Message = "boom";
  NoSuggestions.CheckerError = E;
  EXPECT_NE(NoSuggestions.bestMessage().find("No suggestion found"),
            std::string::npos);
  EXPECT_NE(NoSuggestions.bestMessage().find("boom"), std::string::npos);
}

} // namespace
