//===- SyncTest.cpp - Annotated sync layer and lock-rank checker tests ------==//
//
// Pins the concurrency contract's runtime half (DESIGN.md section 15):
// the lock-rank checker in support/Sync.h must abort -- loudly, naming
// both locks -- on any acquisition that is not strictly rank-increasing
// (a *potential* deadlock cycle), stay silent on correct nesting, treat
// shared->exclusive upgrades and same-rank pairs as the deadlocks they
// are, and keep its per-thread bookkeeping consistent across a CondVar
// wait's release/re-acquire. The compile-time half (-Wthread-safety) is
// proven by the thread-safety CI job, not here.
//
//===----------------------------------------------------------------------===//

#include "support/Sync.h"

#include <gtest/gtest.h>

#include <thread>

using namespace seminal;
using namespace seminal::sync;

namespace {

/// Restores the checker toggle whatever the test body does; death tests
/// fork, so the parent's state must be explicit, not inherited luck.
/// "threadsafe" style (fork+exec) keeps the CondVar producer threads in
/// this binary from corrupting the forked child.
class SyncTest : public ::testing::Test {
protected:
  void SetUp() override {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Prev = setRankChecksEnabled(true);
  }
  void TearDown() override { setRankChecksEnabled(Prev); }
  bool Prev = true;
};
using SyncDeathTest = SyncTest;

TEST_F(SyncTest, CorrectNestingIsSilent) {
  // The canonical happy path: outermost server lock, then pool, then
  // log -- ranks 20 < 40 < 90, strictly increasing.
  Mutex Engine(LockRank::ServerEngine, "test.engine");
  Mutex Pool(LockRank::ThreadPool, "test.pool");
  Mutex Log(LockRank::Log, "test.log");
  MutexLock L1(Engine);
  MutexLock L2(Pool);
  MutexLock L3(Log);
  SUCCEED();
}

TEST_F(SyncTest, SequentialReacquisitionIsSilent) {
  // Rank order constrains *nesting*, not lifetime: dropping a high lock
  // and then taking a low one is fine.
  Mutex High(LockRank::Log, "test.high");
  Mutex Low(LockRank::ServerEngine, "test.low");
  {
    MutexLock L(High);
  }
  MutexLock L(Low);
  SUCCEED();
}

TEST_F(SyncTest, RelockableGuardKeepsBookkeeping) {
  // The drop-the-lock-around-work pattern (ThreadPool::workerMain):
  // unlock() empties the held set, so work may take *any* rank; lock()
  // re-enters it.
  Mutex Pool(LockRank::ThreadPool, "test.pool");
  Mutex Engine(LockRank::ServerEngine, "test.engine");
  MutexLock L(Pool);
  L.unlock();
  {
    // Lower rank than Pool: legal only because Pool is not held here.
    MutexLock Work(Engine);
  }
  L.lock();
}

TEST_F(SyncDeathTest, InvertedAcquisitionAborts) {
  // The deliberately inverted pair the ISSUE demands: holding rank 90,
  // acquiring rank 60 is a potential deadlock cycle even though no
  // second thread exists to realize it.
  Mutex Log(LockRank::Log, "test.log");
  Mutex Metrics(LockRank::Metrics, "test.metrics");
  MutexLock L(Log);
  EXPECT_DEATH({ MutexLock Bad(Metrics); }, "rank not strictly increasing");
}

TEST_F(SyncDeathTest, ReportNamesBothLocks) {
  Mutex Outer(LockRank::Trace, "test.outer.trace");
  Mutex Inner(LockRank::Telemetry, "test.inner.telemetry");
  MutexLock L(Outer);
  // The report must carry both names so the abort is actionable.
  EXPECT_DEATH({ MutexLock Bad(Inner); },
               "test\\.inner\\.telemetry.*test\\.outer\\.trace");
}

TEST_F(SyncDeathTest, SameRankPairAborts) {
  // Two locks sharing a rank may never nest: "strictly increasing"
  // leaves no tie-break, so neither order is legal.
  Mutex A(LockRank::Leaf, "test.leaf.a");
  Mutex B(LockRank::Leaf, "test.leaf.b");
  MutexLock L(A);
  EXPECT_DEATH({ MutexLock Bad(B); }, "rank not strictly increasing");
}

TEST_F(SyncDeathTest, RecursiveAcquisitionAborts) {
  Mutex M(LockRank::Leaf, "test.recursive");
  MutexLock L(M);
  EXPECT_DEATH(M.lock(), "recursive acquisition");
}

TEST_F(SyncDeathTest, SharedUpgradeAborts) {
  // Reader-held, then exclusive on the same mutex: the classic upgrade
  // self-deadlock (blocks forever waiting for its own reader).
  SharedMutex M(LockRank::Metrics, "test.shared");
  ReaderLock R(M);
  EXPECT_DEATH(M.lock(), "recursive acquisition");
}

TEST_F(SyncDeathTest, SharedReacquisitionAborts) {
  // Even shared-after-shared on one mutex is flagged: with a writer
  // queued between the two reader acquisitions it deadlocks.
  SharedMutex M(LockRank::Metrics, "test.shared");
  ReaderLock R(M);
  EXPECT_DEATH(M.lock_shared(), "recursive acquisition");
}

TEST_F(SyncTest, SharedThenHigherExclusiveIsSilent) {
  // Reader/writer rules only forbid *same-mutex* upgrades; a reader may
  // still take higher-ranked locks.
  SharedMutex Map(LockRank::Metrics, "test.map");
  Mutex Log(LockRank::Log, "test.log");
  ReaderLock R(Map);
  MutexLock L(Log);
  SUCCEED();
}

TEST_F(SyncDeathTest, WriterInversionAborts) {
  // Exclusive acquisitions of a SharedMutex obey the same rank rule.
  SharedMutex High(LockRank::Log, "test.shared.high");
  SharedMutex Low(LockRank::Metrics, "test.shared.low");
  WriterLock W(High);
  EXPECT_DEATH({ WriterLock Bad(Low); }, "rank not strictly increasing");
}

TEST_F(SyncTest, CondVarWaitReacquires) {
  // wait() releases and re-acquires through the wrapper, so after it
  // returns the mutex is held again -- both for real (the guarded flag
  // reads race-free) and in the checker's bookkeeping (the follow-up
  // higher-rank acquisition below is legal, a second wait-mutex
  // acquisition would abort).
  Mutex M(LockRank::Metrics, "test.cv");
  CondVar CV;
  bool Ready = false;
  std::thread Producer([&] {
    MutexLock L(M);
    Ready = true;
    CV.notify_one();
  });
  {
    MutexLock L(M);
    while (!Ready)
      CV.wait(M);
    EXPECT_TRUE(Ready);
    // Held-set still records M: acquiring above it is legal...
    Mutex Log(LockRank::Log, "test.cv.log");
    MutexLock L2(Log);
  }
  Producer.join();
}

TEST_F(SyncDeathTest, WaitMutexStillHeldAfterWait) {
  Mutex M(LockRank::Metrics, "test.cv");
  CondVar CV;
  bool Ready = false;
  std::thread Producer([&] {
    MutexLock L(M);
    Ready = true;
    CV.notify_one();
  });
  MutexLock L(M);
  while (!Ready)
    CV.wait(M);
  Producer.join();
  // ...and re-acquiring the wait mutex itself is still the recursive
  // acquisition it always was: the wait left it held, not dropped.
  EXPECT_DEATH(M.lock(), "recursive acquisition");
}

TEST_F(SyncTest, RuntimeToggleDisablesChecking) {
  // The daemon may run with checks off (Release compiles them out
  // entirely); popHeld must tolerate locks acquired while disabled.
  Mutex High(LockRank::Log, "test.high");
  Mutex Low(LockRank::ServerEngine, "test.low");
  setRankChecksEnabled(false);
  High.lock();
  Low.lock(); // Inverted, but checking is off: no abort.
  setRankChecksEnabled(true);
  Low.unlock(); // Not in the (empty) held stack: tolerated no-ops.
  High.unlock();
  SUCCEED();
}

TEST_F(SyncTest, RanksAreIndependentPerThread) {
  // The held stack is thread-local: two threads may hold the same pair
  // in opposite *lifetimes* as long as neither nests them.
  Mutex A(LockRank::Metrics, "test.a");
  Mutex B(LockRank::Log, "test.b");
  std::thread T([&] {
    MutexLock L(B);
  });
  {
    MutexLock L(A);
  }
  T.join();
  SUCCEED();
}

} // namespace
