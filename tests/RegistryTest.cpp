//===- RegistryTest.cpp - Tests for the open change framework -------------==//
//
// Section 6's "open system where programmers could describe new ...
// constructive changes": generators plug into the enumerator without
// touching the searcher, and oracle vetting keeps them sound.
//
//===----------------------------------------------------------------------===//

#include "core/ChangeRegistry.h"
#include "core/Seminal.h"
#include "minicaml/Parser.h"
#include "minicaml/Printer.h"

#include <gtest/gtest.h>

using namespace seminal;
using namespace seminal::caml;

namespace {

/// A custom change: convert an int-typed expression used where a string
/// is wanted by wrapping it in string_of_int.
void stringOfIntGenerator(const Expr &Node,
                          std::vector<CandidateChange> &Out) {
  if (Node.kind() != Expr::Kind::Var && Node.kind() != Expr::Kind::IntLit &&
      Node.kind() != Expr::Kind::App && Node.kind() != Expr::Kind::BinOp)
    return;
  CandidateChange C;
  std::vector<ExprPtr> Args;
  Args.push_back(Node.clone());
  C.Replacement = makeApp(makeVar("string_of_int"), std::move(Args));
  C.Description = "convert the integer to a string with string_of_int";
  Out.push_back(std::move(C));
}

TEST(ChangeRegistryTest, StartsEmpty) {
  ChangeRegistry Reg;
  EXPECT_TRUE(Reg.empty());
  EXPECT_EQ(Reg.size(), 0u);
}

TEST(ChangeRegistryTest, RegisteredGeneratorRuns) {
  ChangeRegistry Reg;
  Reg.add("string_of_int-wrap", stringOfIntGenerator);
  EXPECT_EQ(Reg.size(), 1u);
  EXPECT_EQ(Reg.names()[0], "string_of_int-wrap");

  ParseExprResult E = parseExpression("n");
  std::vector<CandidateChange> Out;
  Reg.generate(*E.E, Out);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(printExpr(*Out[0].Replacement), "string_of_int n");
}

TEST(ChangeRegistryTest, FlowsThroughTheEnumerator) {
  ChangeRegistry Reg;
  Reg.add("string_of_int-wrap", stringOfIntGenerator);
  EnumeratorOptions Opts;
  Opts.Extra = &Reg;
  ParseExprResult E = parseExpression("n");
  // A bare variable has no built-in changes; only the custom one shows.
  auto Changes = enumerateChanges(*E.E, Opts);
  ASSERT_EQ(Changes.size(), 1u);
  EXPECT_EQ(Changes[0].Description,
            "convert the integer to a string with string_of_int");
}

TEST(ChangeRegistryTest, CustomChangeWinsEndToEnd) {
  // "count: " ^ (n * 2) -- the built-in catalog can only adapt or remove
  // the int expression; the custom change provides the actual fix and
  // outranks both.
  ChangeRegistry Reg;
  Reg.add("string_of_int-wrap", stringOfIntGenerator);

  SeminalOptions Opts;
  Opts.Search.Enum.Extra = &Reg;
  SeminalReport R = runSeminalOnSource(
      "let report n = \"count: \" ^ (n * 2)\n", Opts);
  ASSERT_FALSE(R.Suggestions.empty());
  const Suggestion &Top = R.Suggestions.front();
  EXPECT_EQ(Top.Kind, ChangeKind::Constructive);
  ASSERT_NE(Top.Replacement, nullptr);
  EXPECT_EQ(printExpr(*Top.Replacement), "string_of_int (n * 2)");
  ASSERT_TRUE(Top.ReplacementType.has_value());
  EXPECT_EQ(*Top.ReplacementType, "string");
}

TEST(ChangeRegistryTest, WithoutRegistryNoConstructiveFix) {
  SeminalReport R =
      runSeminalOnSource("let report n = \"count: \" ^ (n * 2)\n");
  ASSERT_FALSE(R.Suggestions.empty());
  EXPECT_NE(R.Suggestions.front().Kind, ChangeKind::Constructive);
}

TEST(ChangeRegistryTest, UnsoundGeneratorsAreVetted) {
  // A generator producing garbage replacements: the oracle rejects them
  // all; no unsound suggestion can surface (the safety property that
  // makes the framework open).
  ChangeRegistry Reg;
  Reg.add("garbage", [](const Expr &Node, std::vector<CandidateChange> &Out) {
    CandidateChange C;
    C.Replacement = makeApp(makeVar("no_such_function"),
                            [] {
                              std::vector<ExprPtr> Args;
                              Args.push_back(makeIntLit(1));
                              return Args;
                            }());
    C.Description = "garbage";
    Out.push_back(std::move(C));
  });
  SeminalOptions Opts;
  Opts.Search.Enum.Extra = &Reg;
  SeminalReport R = runSeminalOnSource("let x = 1 + \"two\"", Opts);
  for (const auto &S : R.Suggestions)
    EXPECT_NE(S.Description, "garbage");
  // And untriaged suggestions remain sound.
  for (const auto &S : R.Suggestions) {
    if (!S.ViaTriage) {
      EXPECT_TRUE(typecheckProgram(S.Modified).ok());
    }
  }
}

TEST(ChangeRegistryTest, MultipleGeneratorsAllRun) {
  ChangeRegistry Reg;
  int Calls = 0;
  Reg.add("a", [&](const Expr &, std::vector<CandidateChange> &) { ++Calls; });
  Reg.add("b", [&](const Expr &, std::vector<CandidateChange> &) { ++Calls; });
  ParseExprResult E = parseExpression("x");
  std::vector<CandidateChange> Out;
  Reg.generate(*E.E, Out);
  EXPECT_EQ(Calls, 2);
}

//===----------------------------------------------------------------------===//
// Triage-order ablation (Section 2.4: "the details ... are less
// important. There are many variations we could try")
//===----------------------------------------------------------------------===//

class TriageOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(TriageOrderSweep, BothOrdersFindSmallFixes) {
  SeminalOptions Opts;
  Opts.Search.Order = GetParam() == 0 ? TriageOrder::RightToLeft
                                      : TriageOrder::LeftToRight;
  SeminalReport R = runSeminalOnSource("let go y =\n"
                                       "  let a = 3 + true in\n"
                                       "  let b = 4 + \"hi\" in\n"
                                       "  y + 1\n",
                                       Opts);
  bool FoundSmall = false;
  for (const auto &S : R.Suggestions)
    if (S.ViaTriage && S.OriginalSize < 5)
      FoundSmall = true;
  EXPECT_TRUE(FoundSmall);
}

INSTANTIATE_TEST_SUITE_P(Orders, TriageOrderSweep, ::testing::Range(0, 2));

} // namespace
