//===- RuntimeTest.cpp - Tests for the mini-Caml evaluator ----------------==//
//
// Runs well-typed programs and checks computed values -- including the
// end-to-end property that applying a SEMINAL suggestion yields a
// program that type-checks AND computes the intended result.
//
//===----------------------------------------------------------------------===//

#include "core/Seminal.h"
#include "corpus/Programs.h"
#include "minicaml/Eval.h"
#include "minicaml/Parser.h"

#include <gtest/gtest.h>

using namespace seminal;
using namespace seminal::caml;

namespace {

Program parse(const std::string &Source) {
  ParseResult R = parseProgram(Source);
  EXPECT_TRUE(R.ok()) << (R.Error ? R.Error->str() : "");
  return R.ok() ? std::move(*R.Prog) : Program();
}

/// Runs and returns the rendered value of binding \p Name.
std::string runFor(const std::string &Source, const std::string &Name) {
  Program P = parse(Source);
  EvalResult R = evalProgram(P);
  EXPECT_TRUE(R.ok()) << (R.Error ? *R.Error : "");
  ValuePtr V = R.find(Name);
  return V ? V->str() : "<missing>";
}

TEST(RuntimeTest, Arithmetic) {
  EXPECT_EQ(runFor("let x = 1 + 2 * 3", "x"), "7");
  EXPECT_EQ(runFor("let x = (10 - 4) / 3", "x"), "2");
}

TEST(RuntimeTest, StringsAndComparison) {
  EXPECT_EQ(runFor("let s = \"a\" ^ \"b\" ^ \"c\"", "s"), "\"abc\"");
  EXPECT_EQ(runFor("let b = 3 < 5 && \"x\" = \"x\"", "b"), "true");
}

TEST(RuntimeTest, FunctionsAndCurrying) {
  EXPECT_EQ(runFor("let add a b = a + b\nlet inc = add 1\n"
                   "let x = inc 41",
                   "x"),
            "42");
}

TEST(RuntimeTest, Recursion) {
  EXPECT_EQ(runFor("let rec fact n = if n = 0 then 1 else n * fact (n - 1)\n"
                   "let x = fact 5",
                   "x"),
            "120");
}

TEST(RuntimeTest, ListsAndPatternMatching) {
  EXPECT_EQ(runFor("let rec sum xs = match xs with [] -> 0 "
                   "| x :: t -> x + sum t\n"
                   "let x = sum [1; 2; 3; 4]",
                   "x"),
            "10");
  EXPECT_EQ(runFor("let l = 1 :: 2 :: [3]", "l"), "[1; 2; 3]");
  EXPECT_EQ(runFor("let l = [1; 2] @ [3]", "l"), "[1; 2; 3]");
}

TEST(RuntimeTest, TuplesAndProjections) {
  EXPECT_EQ(runFor("let p = (1, \"two\")\nlet x = fst p", "x"), "1");
  EXPECT_EQ(runFor("let swap (a, b) = (b, a)\nlet q = swap (1, 2)", "q"),
            "(2, 1)");
}

TEST(RuntimeTest, StdlibHigherOrder) {
  EXPECT_EQ(runFor("let x = List.map (fun v -> v * v) [1; 2; 3]", "x"),
            "[1; 4; 9]");
  EXPECT_EQ(runFor("let x = List.filter (fun v -> v > 1) [1; 2; 3]", "x"),
            "[2; 3]");
  EXPECT_EQ(runFor("let x = List.fold_left (fun a b -> a + b) 0 "
                   "[1; 2; 3; 4]",
                   "x"),
            "10");
  EXPECT_EQ(runFor("let x = List.combine [1; 2] [\"a\"; \"b\"]", "x"),
            "[(1, \"a\"); (2, \"b\")]");
}

TEST(RuntimeTest, ReferencesAndSequencing) {
  EXPECT_EQ(runFor("let r = ref 0\n"
                   "let step = r := !r + 5; r := !r * 2\n"
                   "let out = !r",
                   "out"),
            "10");
}

TEST(RuntimeTest, RecordsAndMutation) {
  EXPECT_EQ(runFor("type c = { mutable v : int; tag : string }\n"
                   "let cell = { v = 1; tag = \"c\" }\n"
                   "let bump = cell.v <- cell.v + 41\n"
                   "let out = cell.v",
                   "out"),
            "42");
}

TEST(RuntimeTest, VariantsAndMatch) {
  EXPECT_EQ(runFor("type shape = Circle of int | Dot\n"
                   "let area s = match s with Circle r -> r * r | Dot -> 0\n"
                   "let x = area (Circle 3)",
                   "x"),
            "9");
}

TEST(RuntimeTest, PrintingIsCaptured) {
  Program P = parse("let m = print_string \"hi \"; print_int 42");
  EvalResult R = evalProgram(P);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, "hi 42");
}

TEST(RuntimeTest, MatchFailureReported) {
  Program P = parse("let x = match [] with v :: _ -> v");
  EvalResult R = evalProgram(P);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error->find("match failure"), std::string::npos);
}

TEST(RuntimeTest, UncaughtExceptionReported) {
  Program P = parse("let x = if true then raise Not_found else 1");
  EvalResult R = evalProgram(P);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error->find("Not_found"), std::string::npos);
}

TEST(RuntimeTest, DivisionByZeroReported) {
  Program P = parse("let x = 1 / 0");
  EvalResult R = evalProgram(P);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error->find("Division_by_zero"), std::string::npos);
}

TEST(RuntimeTest, FuelBoundsInfiniteLoops) {
  Program P = parse("let rec spin x = spin x\nlet v = spin 0");
  EvalResult R = evalProgram(P, /*Fuel=*/5000);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error->find("fuel"), std::string::npos);
}

TEST(RuntimeTest, AssignmentTemplatesRun) {
  // Every corpus template is executable, not just typeable.
  for (const AssignmentTemplate &A : assignmentTemplates()) {
    Program P = parse(A.Source);
    EvalResult R = evalProgram(P, 2000000);
    EXPECT_TRUE(R.ok()) << A.Title << ": " << (R.Error ? *R.Error : "");
  }
}

TEST(RuntimeTest, AppliedSuggestionComputesTheIntendedResult) {
  // The strongest end-to-end property: the Figure 2 fix not only
  // type-checks, it computes the sums the student wanted.
  std::string Src =
      "let map2 f aList bList =\n"
      "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
      "let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n";
  SeminalReport Report = runSeminalOnSource(Src);
  ASSERT_FALSE(Report.Suggestions.empty());
  const Suggestion &Top = Report.Suggestions.front();
  ASSERT_FALSE(Top.ViaTriage);

  EvalResult R = evalProgram(Top.Modified);
  ASSERT_TRUE(R.ok()) << (R.Error ? *R.Error : "");
  ValuePtr Lst = R.find("lst");
  ASSERT_NE(Lst, nullptr);
  EXPECT_EQ(Lst->str(), "[5; 7; 9]");
}

TEST(RuntimeTest, QuickstartSuggestionRuns) {
  SeminalReport Report = runSeminalOnSource("let area w h = w * h\n"
                                            "let a = area (3, 4)\n");
  ASSERT_FALSE(Report.Suggestions.empty());
  EvalResult R = evalProgram(Report.Suggestions.front().Modified);
  ASSERT_TRUE(R.ok()) << (R.Error ? *R.Error : "");
  EXPECT_EQ(R.find("a")->str(), "12");
}

} // namespace
