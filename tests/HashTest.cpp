//===- HashTest.cpp - Structural-hash properties ---------------------------==//
//
// The verdict cache (core/CheckpointedOracle.h) is only sound if the hash
// respects structural equality: equal trees must hash equal (clone
// stability), and in practice unequal trees must hash unequal (collision
// sanity -- a collision is handled by the equality confirmation, but a
// collision-happy hash would degrade the cache to a linear scan). The
// inequality property is exercised over exactly the edits the searcher
// performs: every enumerator candidate and registry-supplied change.
//
//===----------------------------------------------------------------------===//

#include "core/ChangeRegistry.h"
#include "core/Enumerator.h"
#include "corpus/RandomAst.h"
#include "minicaml/Hash.h"
#include "minicaml/Parser.h"
#include "minicaml/Printer.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

using namespace seminal;
using namespace seminal::caml;

namespace {

Program parse(const std::string &Source) {
  ParseResult R = parseProgram(Source);
  EXPECT_TRUE(R.ok()) << Source;
  return std::move(*R.Prog);
}

//===----------------------------------------------------------------------===//
// Equal trees hash equal
//===----------------------------------------------------------------------===//

TEST(HashTest, CloneHashesIdenticallyOnRandomPrograms) {
  for (uint64_t Seed = 0; Seed < 50; ++Seed) {
    Rng R(Seed);
    Program P = randomProgram(R, /*MaxDecls=*/5, /*MaxDepth=*/5);
    Program C = P.clone();
    ASSERT_TRUE(P.equals(C));
    EXPECT_EQ(hashProgram(P), hashProgram(C)) << "seed " << Seed;
    for (size_t I = 0; I < P.Decls.size(); ++I)
      EXPECT_EQ(hashDecl(*P.Decls[I]), hashDecl(*C.Decls[I]))
          << "seed " << Seed << " decl " << I;
  }
}

TEST(HashTest, CloneHashesIdenticallyOnRandomExprs) {
  for (uint64_t Seed = 0; Seed < 200; ++Seed) {
    Rng R(Seed);
    ExprPtr E = randomExpr(R, /*MaxDepth=*/6);
    EXPECT_EQ(hashExpr(*E), hashExpr(*E->clone())) << "seed " << Seed;
  }
}

TEST(HashTest, SpansAreIgnored) {
  // The same source parsed at different offsets yields different spans
  // but identical structure; the cache must treat them as the same key.
  Program A = parse("let f x = x + 1");
  Program B = parse("\n\n  let f x = x + 1");
  ASSERT_TRUE(A.equals(B));
  EXPECT_EQ(hashProgram(A), hashProgram(B));
}

//===----------------------------------------------------------------------===//
// Collision sanity
//===----------------------------------------------------------------------===//

TEST(HashTest, NoCollisionsAcrossRandomExprCorpus) {
  // Among a few thousand random trees, any two with the same 64-bit hash
  // must actually be structurally equal.
  std::map<uint64_t, std::vector<ExprPtr>> Buckets;
  for (uint64_t Seed = 0; Seed < 3000; ++Seed) {
    Rng R(Seed);
    ExprPtr E = randomExpr(R, /*MaxDepth=*/5);
    Buckets[hashExpr(*E)].push_back(std::move(E));
  }
  // The generator repeats itself, so some buckets legitimately hold
  // several (equal) trees; what must not happen is unequal trees sharing
  // a bucket.
  size_t Distinct = Buckets.size();
  EXPECT_GT(Distinct, 1000u) << "generator (or hash) is degenerate";
  for (const auto &KV : Buckets)
    for (size_t I = 1; I < KV.second.size(); ++I)
      EXPECT_TRUE(KV.second[0]->equals(*KV.second[I]))
          << "hash collision between:\n  " << printExpr(*KV.second[0])
          << "\n  " << printExpr(*KV.second[I]);
}

TEST(HashTest, SmallPerturbationsChangeTheHash) {
  const char *Variants[] = {
      "let f x = x + 1",       // baseline
      "let f x = x + 2",       // literal value
      "let f x = x - 1",       // operator
      "let f y = y + 1",       // binder and variable name
      "let g x = x + 1",       // function name
      "let rec f x = x + 1",   // rec flag
      "let f x z = x + 1",     // extra parameter
      "let f x = (x, 1)",      // expression kind
      "let f x = [x; 1]",      // list vs tuple
      "let f x = 1 + x",       // operand order
  };
  std::map<uint64_t, const char *> Seen;
  for (const char *Src : Variants) {
    uint64_t H = hashProgram(parse(Src));
    auto It = Seen.find(H);
    EXPECT_TRUE(It == Seen.end())
        << "collision: \"" << Src << "\" vs \"" << It->second << "\"";
    Seen.emplace(H, Src);
  }
}

//===----------------------------------------------------------------------===//
// Every searcher edit kind moves the hash
//===----------------------------------------------------------------------===//

/// Applies every candidate the enumerator (plus \p Opts.Extra generators)
/// proposes anywhere inside \p Prog and checks the hash tracks structural
/// equality: modified != original hash exactly when the trees differ.
/// \returns the number of candidates exercised.
int checkEditsPerturbHash(const Program &Prog, const EnumeratorOptions &Opts,
                          const char *Label) {
  SCOPED_TRACE(Label);
  uint64_t BaseHash = hashProgram(Prog);
  struct Site {
    NodePath Path;
    const Expr *Node;
  };
  std::vector<Site> Sites;
  for (unsigned D = 0; D < Prog.Decls.size(); ++D) {
    if (!Prog.Decls[D]->Rhs)
      continue;
    // Preorder walk collecting every path.
    std::vector<NodePath> Stack{NodePath(D)};
    while (!Stack.empty()) {
      NodePath P = std::move(Stack.back());
      Stack.pop_back();
      const Expr *Node = resolvePath(const_cast<Program &>(Prog), P);
      if (Node == nullptr) {
        ADD_FAILURE() << "unresolvable path " << P.str();
        return 0;
      }
      for (unsigned I = 0; I < Node->numChildren(); ++I)
        Stack.push_back(P.descend(I));
      Sites.push_back(Site{std::move(P), Node});
    }
  }

  int Checked = 0;
  for (const Site &S : Sites) {
    for (CandidateChange &C : enumerateChanges(*S.Node, Opts)) {
      Program V = Prog.clone();
      replaceAtPath(V, S.Path, std::move(C.Replacement));
      bool StructurallyEqual = V.equals(Prog);
      EXPECT_EQ(hashProgram(V) == BaseHash, StructurallyEqual)
          << "edit \"" << C.Description << "\" at " << S.Path.str();
      EXPECT_EQ(hashDecl(*V.Decls[S.Path.DeclIndex]) ==
                    hashDecl(*Prog.Decls[S.Path.DeclIndex]),
                StructurallyEqual)
          << "edit \"" << C.Description << "\" at " << S.Path.str();
      ++Checked;
    }
  }
  return Checked;
}

TEST(HashTest, EnumeratorEditsPerturbTheHash) {
  const char *Sources[] = {
      "let f (x, y) = x + y\nlet z = f 1 2",
      "let add a b = a + b\nlet t = add (1, 2)",
      "let l = 1 :: 2",
      "let m = match [1] with [] -> 0 | h :: t -> h",
      "let p = (fun x -> x ^ \"!\") 3",
  };
  int Checked = 0;
  for (const char *Src : Sources) {
    EnumeratorOptions Opts;
    Opts.GateExpensiveChanges = false; // Surface whole families.
    Checked += checkEditsPerturbHash(parse(Src), Opts, Src);
  }
  EXPECT_GT(Checked, 20) << "suspiciously few candidates enumerated";
}

TEST(HashTest, RegistryEditsPerturbTheHash) {
  // A user-supplied generator (the Section 6 open framework) feeds the
  // same cache; its edits must move the hash too.
  ChangeRegistry Registry;
  Registry.add("swap-to-string", [](const Expr &Node,
                                    std::vector<CandidateChange> &Out) {
    if (Node.kind() != Expr::Kind::IntLit)
      return;
    CandidateChange C;
    C.Replacement = makeStringLit("s");
    C.Description = "replace int literal with a string";
    Out.push_back(std::move(C));
  });
  EnumeratorOptions Opts;
  Opts.Extra = &Registry;
  int Checked = checkEditsPerturbHash(parse("let x = 1 + 2\nlet y = x + 3"),
                                      Opts, "registry source");
  EXPECT_GT(Checked, 0) << "registry generator contributed no candidates";
}

} // namespace
