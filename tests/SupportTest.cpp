//===- SupportTest.cpp - Tests for the support library --------------------==//

#include "support/Metrics.h"
#include "support/Rng.h"
#include "support/SourceLoc.h"
#include "support/Stats.h"
#include "support/StrUtil.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <vector>

using namespace seminal;

TEST(SourceLocTest, DefaultIsInvalid) {
  SourceLoc Loc;
  EXPECT_FALSE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "<unknown>");
}

TEST(SourceLocTest, StrRendersLineAndColumn) {
  SourceLoc Loc(3, 7, 42);
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "line 3, column 7");
}

TEST(SourceSpanTest, ContainsIsHalfOpen) {
  SourceSpan Span(SourceLoc(1, 1, 10), 20);
  EXPECT_TRUE(Span.contains(10));
  EXPECT_TRUE(Span.contains(19));
  EXPECT_FALSE(Span.contains(20));
  EXPECT_FALSE(Span.contains(9));
}

TEST(SourceSpanTest, OverlapsAndEncloses) {
  SourceSpan A(SourceLoc(1, 1, 10), 20);
  SourceSpan B(SourceLoc(1, 5, 15), 25);
  SourceSpan C(SourceLoc(1, 9, 20), 30);
  SourceSpan Inner(SourceLoc(1, 3, 12), 18);
  EXPECT_TRUE(A.overlaps(B));
  EXPECT_TRUE(B.overlaps(A));
  EXPECT_FALSE(A.overlaps(C));
  EXPECT_TRUE(A.encloses(Inner));
  EXPECT_FALSE(Inner.encloses(A));
}

TEST(SourceSpanTest, MergeCoversBoth) {
  SourceSpan A(SourceLoc(1, 1, 10), 20);
  SourceSpan B(SourceLoc(2, 1, 30), 40);
  SourceSpan M = SourceSpan::merge(A, B);
  EXPECT_EQ(M.Begin.Offset, 10u);
  EXPECT_EQ(M.EndOffset, 40u);
  // Merging with an invalid span returns the valid one.
  SourceSpan Invalid;
  EXPECT_EQ(SourceSpan::merge(A, Invalid).Begin.Offset, 10u);
  EXPECT_EQ(SourceSpan::merge(Invalid, B).EndOffset, 40u);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.range(0, 1000), B.range(0, 1000));
}

TEST(RngTest, RangeIsInclusive) {
  Rng R(7);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.range(0, 3);
    EXPECT_GE(V, 0);
    EXPECT_LE(V, 3);
    SawLo |= V == 0;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, GeometricIsAtLeastOne) {
  Rng R(11);
  for (int I = 0; I < 200; ++I)
    EXPECT_GE(R.geometric(0.5), 1);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng A(42);
  Rng Child = A.fork();
  // The fork must not simply mirror the parent.
  int Same = 0;
  for (int I = 0; I < 50; ++I)
    if (A.range(0, 1000000) == Child.range(0, 1000000))
      ++Same;
  EXPECT_LT(Same, 5);
}

TEST(SamplesTest, PercentilesOnKnownData) {
  Samples S;
  for (int I = 1; I <= 100; ++I)
    S.add(double(I));
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 100.0);
  EXPECT_NEAR(S.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(S.mean(), 50.5, 1e-9);
}

TEST(SamplesTest, FractionBelow) {
  Samples S;
  for (int I = 1; I <= 10; ++I)
    S.add(double(I));
  EXPECT_DOUBLE_EQ(S.fractionBelow(5.0), 0.5);
  EXPECT_DOUBLE_EQ(S.fractionBelow(0.0), 0.0);
  EXPECT_DOUBLE_EQ(S.fractionBelow(100.0), 1.0);
}

TEST(SamplesTest, CdfIsMonotone) {
  Samples S;
  Rng R(3);
  for (int I = 0; I < 500; ++I)
    S.add(R.unit());
  auto Cdf = S.cdf(20);
  ASSERT_EQ(Cdf.size(), 20u);
  for (size_t I = 1; I < Cdf.size(); ++I) {
    EXPECT_LE(Cdf[I - 1].first, Cdf[I].first);
    EXPECT_LE(Cdf[I - 1].second, Cdf[I].second);
  }
}

TEST(HistogramTest, CountsAndTotal) {
  Histogram H;
  H.add(1);
  H.add(1);
  H.add(2);
  H.add(5, 10);
  EXPECT_EQ(H.count(1), 2u);
  EXPECT_EQ(H.count(2), 1u);
  EXPECT_EQ(H.count(5), 10u);
  EXPECT_EQ(H.count(99), 0u);
  EXPECT_EQ(H.total(), 13u);
}

TEST(HistogramTest, RenderIncludesEveryBucket) {
  Histogram H;
  H.add(1, 100);
  H.add(7, 3);
  std::string Out = H.renderLogScale("size", "count");
  EXPECT_NE(Out.find("1"), std::string::npos);
  EXPECT_NE(Out.find("7"), std::string::npos);
  EXPECT_NE(Out.find("100"), std::string::npos);
}

TEST(StrUtilTest, JoinAndSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  auto Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[2], "");
}

TEST(StrUtilTest, IndentPrefixesNonEmptyLines) {
  EXPECT_EQ(indent("a\nb", 2), "  a\n  b");
}

TEST(StrUtilTest, EscapeStringLiteral) {
  EXPECT_EQ(escapeStringLiteral("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(StrUtilTest, Ellipsize) {
  EXPECT_EQ(ellipsize("hello", 10), "hello");
  EXPECT_EQ(ellipsize("hello world", 8), "hello...");
}

namespace {

AccelCounters makeCounters(uint64_t Base) {
  AccelCounters C;
  C.CacheHits = Base + 1;
  C.CacheMisses = Base + 2;
  C.FullInferences = Base + 3;
  C.IncrementalInferences = Base + 4;
  C.DeclInferencesSaved = Base + 5;
  C.CheckpointSeeds = Base + 6;
  C.CheckpointFallbacks = Base + 7;
  C.BatchesDispatched = Base + 8;
  C.BatchItems = Base + 9;
  C.TypesAllocated = Base + 10;
  return C;
}

} // namespace

TEST(AccelCountersTest, PlusEqualsSumsEveryField) {
  AccelCounters A = makeCounters(0);
  AccelCounters B = makeCounters(100);
  A += B;
  EXPECT_EQ(A.CacheHits, 102u);
  EXPECT_EQ(A.CacheMisses, 104u);
  EXPECT_EQ(A.FullInferences, 106u);
  EXPECT_EQ(A.IncrementalInferences, 108u);
  EXPECT_EQ(A.DeclInferencesSaved, 110u);
  EXPECT_EQ(A.CheckpointSeeds, 112u);
  EXPECT_EQ(A.CheckpointFallbacks, 114u);
  EXPECT_EQ(A.BatchesDispatched, 116u);
  EXPECT_EQ(A.BatchItems, 118u);
  EXPECT_EQ(A.TypesAllocated, 120u);
  EXPECT_EQ(A.inferenceRuns(), 106u + 108u);
  // B is untouched.
  EXPECT_EQ(B.CacheHits, 101u);
}

TEST(AccelCountersTest, PlusEqualsReturnsSelfAndChains) {
  AccelCounters A = makeCounters(0);
  AccelCounters B = makeCounters(10);
  (A += B) += B;
  EXPECT_EQ(A.CacheHits, 1u + 11u + 11u);
  EXPECT_EQ(A.TypesAllocated, 10u + 20u + 20u);
}

TEST(AccelCountersTest, ResetClearsEveryField) {
  AccelCounters A = makeCounters(1000);
  A.reset();
  EXPECT_EQ(A.CacheHits, 0u);
  EXPECT_EQ(A.CacheMisses, 0u);
  EXPECT_EQ(A.FullInferences, 0u);
  EXPECT_EQ(A.IncrementalInferences, 0u);
  EXPECT_EQ(A.DeclInferencesSaved, 0u);
  EXPECT_EQ(A.CheckpointSeeds, 0u);
  EXPECT_EQ(A.CheckpointFallbacks, 0u);
  EXPECT_EQ(A.BatchesDispatched, 0u);
  EXPECT_EQ(A.BatchItems, 0u);
  EXPECT_EQ(A.TypesAllocated, 0u);
  EXPECT_EQ(A.inferenceRuns(), 0u);
  // Reusable after reset.
  A += makeCounters(0);
  EXPECT_EQ(A.CacheHits, 1u);
}

TEST(MetricsTest, SummaryOfKnownSeries) {
  Metrics M;
  for (int I = 1; I <= 100; ++I)
    M.observe("test.series", double(I));
  MetricSummary S = M.summary("test.series");
  EXPECT_EQ(S.Count, 100u);
  EXPECT_DOUBLE_EQ(S.Min, 1.0);
  EXPECT_DOUBLE_EQ(S.Max, 100.0);
  EXPECT_NEAR(S.P50, 50.5, 1e-9);
  EXPECT_NEAR(S.Mean, 50.5, 1e-9);
  EXPECT_GT(S.P95, S.P50);
}

TEST(MetricsTest, NamesAreSortedAndEmptyWorks) {
  Metrics M;
  EXPECT_TRUE(M.empty());
  EXPECT_EQ(M.summary("missing").Count, 0u);
  M.observe("b.second", 2.0);
  M.observe("a.first", 1.0);
  auto Names = M.names();
  ASSERT_EQ(Names.size(), 2u);
  EXPECT_EQ(Names[0], "a.first");
  EXPECT_EQ(Names[1], "b.second");
  EXPECT_FALSE(M.empty());
  M.clear();
  EXPECT_TRUE(M.empty());
}

TEST(MetricsTest, WriteJsonIsWellFormed) {
  Metrics M;
  M.observe("x.y", 1.0);
  M.observe("x.y", 3.0);
  std::ostringstream OS;
  M.writeJson(OS);
  std::string J = OS.str();
  EXPECT_NE(J.find("\"x.y\""), std::string::npos);
  EXPECT_NE(J.find("\"count\""), std::string::npos);
  EXPECT_EQ(J.front(), '{');
  EXPECT_EQ(J.back(), '}');
}

//===----------------------------------------------------------------------===//
// ThreadPool (the only concurrency primitive in the tree; this suite is
// what the CI TSan job points at)
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, EveryItemRunsExactlyOnce) {
  ThreadPool Pool(4);
  constexpr size_t N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&](unsigned, size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "item " << I;
}

TEST(ThreadPoolTest, WorkerIndexStaysInRange) {
  ThreadPool Pool(3);
  ASSERT_EQ(Pool.numThreads(), 3u);
  std::atomic<bool> OutOfRange{false};
  Pool.parallelFor(500, [&](unsigned Worker, size_t) {
    if (Worker >= 3)
      OutOfRange = true;
  });
  EXPECT_FALSE(OutOfRange.load());
}

TEST(ThreadPoolTest, PerIndexSlotsNeedNoLocking) {
  // The batched oracle's usage pattern: disjoint result slots written
  // concurrently, read after the barrier. TSan validates the
  // parallelFor fence makes the unsynchronized writes safe.
  ThreadPool Pool(4);
  constexpr size_t N = 2000;
  std::vector<size_t> Results(N, 0);
  Pool.parallelFor(N, [&](unsigned, size_t I) { Results[I] = I * I; });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Results[I], I * I);
}

TEST(ThreadPoolTest, ReusableAcrossCallsAndZeroItemsIsFine) {
  ThreadPool Pool(2);
  std::atomic<size_t> Total{0};
  Pool.parallelFor(0, [&](unsigned, size_t) { Total.fetch_add(1); });
  EXPECT_EQ(Total.load(), 0u);
  for (int Round = 0; Round < 50; ++Round)
    Pool.parallelFor(10, [&](unsigned, size_t) { Total.fetch_add(1); });
  EXPECT_EQ(Total.load(), 500u);
}

TEST(ThreadPoolTest, PostedTasksRunFifoPerShard) {
  // The server's sharding contract: tasks posted to one shard run in
  // submission order on a single worker, so a shard-pinned session
  // never sees two of its requests concurrently.
  ThreadPool Pool(4);
  constexpr size_t Shards = 4, PerShard = 200;
  std::vector<std::vector<size_t>> Order(Shards);
  for (size_t I = 0; I < PerShard; ++I)
    for (size_t Shard = 0; Shard < Shards; ++Shard)
      Pool.post(Shard, [&Order, Shard, I] { Order[Shard].push_back(I); });
  Pool.drainPosted();
  for (size_t Shard = 0; Shard < Shards; ++Shard) {
    ASSERT_EQ(Order[Shard].size(), PerShard) << "shard " << Shard;
    for (size_t I = 0; I < PerShard; ++I)
      EXPECT_EQ(Order[Shard][I], I) << "shard " << Shard;
  }
}

TEST(ThreadPoolTest, PostedTasksCoexistWithParallelFor) {
  ThreadPool Pool(3);
  std::atomic<size_t> Posted{0};
  std::atomic<size_t> Items{0};
  for (size_t I = 0; I < 100; ++I)
    Pool.post(I, [&] { Posted.fetch_add(1); });
  Pool.parallelFor(100, [&](unsigned, size_t) { Items.fetch_add(1); });
  Pool.drainPosted();
  EXPECT_EQ(Posted.load(), 100u);
  EXPECT_EQ(Items.load(), 100u);
}

TEST(ThreadPoolTest, DrainPostedWithNothingPostedReturns) {
  ThreadPool Pool(2);
  Pool.drainPosted();
  std::atomic<int> Ran{0};
  Pool.post(0, [&] { Ran.fetch_add(1); });
  Pool.drainPosted();
  Pool.drainPosted();
  EXPECT_EQ(Ran.load(), 1);
}
