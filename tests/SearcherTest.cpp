//===- SearcherTest.cpp - End-to-end tests for the search procedure -------==//
//
// Exercises the full pipeline (oracle + searcher + ranker + messages) on
// the paper's running examples and on a battery of mutated programs,
// including the key soundness invariant: every untriaged suggestion's
// modified program type-checks.
//
//===----------------------------------------------------------------------===//

#include "core/Oracle.h"
#include "core/Ranker.h"
#include "core/Seminal.h"
#include "minicaml/Printer.h"

#include <gtest/gtest.h>

using namespace seminal;
using namespace seminal::caml;

namespace {

SeminalReport run(const std::string &Source, SeminalOptions Opts = {}) {
  return runSeminalOnSource(Source, Opts);
}

std::string allSuggestions(const SeminalReport &R) {
  std::string Out;
  for (const auto &S : R.Suggestions) {
    Out += "  [" + std::to_string(long(S.Kind)) +
           (S.ViaTriage ? ",triage" : "") + "] ";
    if (S.Original)
      Out += printExpr(*S.Original) + " => ";
    if (S.Replacement)
      Out += printExpr(*S.Replacement);
    Out += "  (" + S.Description + ")\n";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Bypass and localization
//===----------------------------------------------------------------------===//

TEST(SearcherTest, WellTypedInputBypasses) {
  SeminalReport R = run("let x = 1\nlet y = x + 1");
  EXPECT_TRUE(R.InputTypechecks);
  EXPECT_TRUE(R.Suggestions.empty());
  EXPECT_EQ(R.bestMessage(), "No type errors.");
}

TEST(SearcherTest, SyntaxErrorIsReported) {
  SeminalReport R = run("let x = ");
  ASSERT_TRUE(R.SyntaxError.has_value());
  EXPECT_NE(R.bestMessage().find("Syntax error"), std::string::npos);
}

TEST(SearcherTest, PrefixLocalizationFindsFailingDecl) {
  SeminalReport R = run("let a = 1\nlet b = a + true\nlet c = b");
  ASSERT_TRUE(R.FailingDeclIndex.has_value());
  EXPECT_EQ(*R.FailingDeclIndex, 1u);
}

TEST(SearcherTest, LaterDeclsAreNeverExamined) {
  // The third declaration is also broken; search must focus on the second
  // (the paper's searcher does not examine the third binding).
  SeminalReport R = run("let a = 1\nlet b = a + true\nlet c = 1 + \"x\"");
  ASSERT_TRUE(R.FailingDeclIndex.has_value());
  EXPECT_EQ(*R.FailingDeclIndex, 1u);
  for (const auto &S : R.Suggestions)
    EXPECT_EQ(S.Path.DeclIndex, 1u);
}

//===----------------------------------------------------------------------===//
// Paper examples
//===----------------------------------------------------------------------===//

TEST(SearcherPaperTest, Figure2CurryTheTupledFunction) {
  SeminalReport R = run(
      "let map2 f aList bList =\n"
      "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
      "let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n"
      "let ans = List.filter (fun x -> x == 0) lst\n");
  ASSERT_FALSE(R.Suggestions.empty());
  const Suggestion &Top = R.Suggestions.front();
  EXPECT_EQ(Top.Kind, ChangeKind::Constructive) << allSuggestions(R);
  ASSERT_NE(Top.Original, nullptr);
  EXPECT_EQ(printExpr(*Top.Original), "fun (x, y) -> x + y")
      << allSuggestions(R);
  EXPECT_EQ(printExpr(*Top.Replacement), "fun x y -> x + y");
  ASSERT_TRUE(Top.ReplacementType.has_value());
  EXPECT_EQ(*Top.ReplacementType, "int -> int -> int");
  EXPECT_FALSE(Top.ViaTriage);
  // The rendered message mirrors the paper's Figure 2.
  std::string Msg = R.bestMessage();
  EXPECT_NE(Msg.find("fun (x, y) -> x + y"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("fun x y -> x + y"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("int -> int -> int"), std::string::npos) << Msg;
}

TEST(SearcherPaperTest, Figure8SwapTheArguments) {
  SeminalReport R = run("let add str lst = if List.mem str lst then lst\n"
                        "                  else str :: lst\n"
                        "let vList1 = [\"a\"; \"b\"]\n"
                        "let s = \"c\"\n"
                        "let out = add vList1 s\n");
  ASSERT_FALSE(R.Suggestions.empty()) << R.conventionalMessage();
  const Suggestion &Top = R.Suggestions.front();
  EXPECT_EQ(Top.Kind, ChangeKind::Constructive) << allSuggestions(R);
  ASSERT_NE(Top.Original, nullptr);
  EXPECT_EQ(printExpr(*Top.Original), "add vList1 s") << allSuggestions(R);
  EXPECT_EQ(printExpr(*Top.Replacement), "add s vList1");
}

TEST(SearcherPaperTest, Figure9AddTheMissingArgument) {
  SeminalReport R = run(
      "type move = For of int * move list | Stop\n"
      "let rec loop movelist acc =\n"
      "  match movelist with\n"
      "    [] -> acc\n"
      "  | For (moves, lst) :: tl ->\n"
      "      let rec finalLst index searchLst =\n"
      "        if index = moves - 1 then []\n"
      "        else (List.nth searchLst) :: finalLst (index + 1) searchLst\n"
      "      in loop (finalLst 0 lst) acc\n"
      "  | Stop :: tl -> loop tl acc\n");
  ASSERT_FALSE(R.Suggestions.empty()) << R.conventionalMessage();
  const Suggestion &Top = R.Suggestions.front();
  EXPECT_EQ(Top.Kind, ChangeKind::Constructive) << allSuggestions(R);
  ASSERT_NE(Top.Original, nullptr);
  EXPECT_EQ(printExpr(*Top.Original), "List.nth searchLst")
      << allSuggestions(R);
  EXPECT_EQ(printExpr(*Top.Replacement), "List.nth searchLst [[...]]");
}

TEST(SearcherPaperTest, Section23AdaptationPrefersLargerExpression) {
  // if e1 e2 then ... where e1 e2 : string (well-typed but not bool).
  SeminalReport R = run("let e1 x = x ^ \"!\"\n"
                        "let e2 = \"s\"\n"
                        "let t = if e1 e2 then 1 else 2\n");
  ASSERT_FALSE(R.Suggestions.empty());
  const Suggestion &Top = R.Suggestions.front();
  EXPECT_EQ(Top.Kind, ChangeKind::Adaptation) << allSuggestions(R);
  ASSERT_NE(Top.Original, nullptr);
  // Adaptation prefers the larger expression e1 e2 over e1 alone.
  EXPECT_EQ(printExpr(*Top.Original), "e1 e2") << allSuggestions(R);
  // The reported type is what the context wanted: bool.
  ASSERT_TRUE(Top.ReplacementType.has_value());
  EXPECT_EQ(*Top.ReplacementType, "bool");
}

TEST(SearcherPaperTest, LetWithManyUsesSuggestsChangingTheDefinition) {
  // let x = e1 in e2 where e2 uses x many times at another type: the
  // checker blames a use; the search suggests changing (removing) e1.
  SeminalReport R = run("let f y =\n"
                        "  let x = \"oops\" in\n"
                        "  (x + 1) + (x + 2) + (x + 3) + (x + 4)\n");
  ASSERT_FALSE(R.Suggestions.empty());
  const Suggestion &Top = R.Suggestions.front();
  ASSERT_NE(Top.Original, nullptr);
  EXPECT_EQ(printExpr(*Top.Original), "\"oops\"") << allSuggestions(R);
}

TEST(SearcherPaperTest, UnboundVariableDetectedViaAdaptFailure) {
  // Section 3.3: `print` for `print_string` -- removal succeeds where
  // adaptation fails, the unbound-variable tell.
  SeminalReport R = run("let f x = print x; x + 1\n");
  ASSERT_FALSE(R.Suggestions.empty()) << R.conventionalMessage();
  bool FoundUnbound = false;
  for (const auto &S : R.Suggestions)
    if (S.LikelyUnboundVariable && S.Original &&
        printExpr(*S.Original) == "print")
      FoundUnbound = true;
  EXPECT_TRUE(FoundUnbound) << allSuggestions(R);
}

//===----------------------------------------------------------------------===//
// Triage (Section 2.4)
//===----------------------------------------------------------------------===//

TEST(TriageTest, TwoIndependentErrorsBothFindable) {
  // let x = 3 + true in ... 4 + "hi" ...: without triage the only
  // suggestion is removing everything; with triage we find a small fix.
  std::string Src = "let go y =\n"
                    "  let x = 3 + true in\n"
                    "  let z = y + 1 in\n"
                    "  let w = 4 + \"hi\" in\n"
                    "  z\n";
  SeminalReport R = run(Src);
  ASSERT_FALSE(R.Suggestions.empty());
  // Some suggestion must be a small triaged fix (size < 5), not the
  // removal of the entire nested let chain.
  bool FoundSmall = false;
  for (const auto &S : R.Suggestions)
    if (S.ViaTriage && S.OriginalSize < 5)
      FoundSmall = true;
  EXPECT_TRUE(FoundSmall) << allSuggestions(R);
}

TEST(TriageTest, WithoutTriageOnlyBigRemoval) {
  std::string Src = "let go y =\n"
                    "  let x = 3 + true in\n"
                    "  let z = y + 1 in\n"
                    "  let w = 4 + \"hi\" in\n"
                    "  z\n";
  SeminalOptions Opts;
  Opts.Search.EnableTriage = false;
  SeminalReport R = run(Src, Opts);
  for (const auto &S : R.Suggestions) {
    EXPECT_FALSE(S.ViaTriage);
    // Everything on offer is a large change.
    EXPECT_GE(S.OriginalSize, 5u) << allSuggestions(R);
  }
}

TEST(TriageTest, Figure4PatternTriage) {
  // The paper's Figure 4: several independent errors inside one match.
  // y's list type is pinned by List.length so the pattern 5 conflicts.
  std::string Src = "let f x y =\n"
                    "  let n = List.length y in\n"
                    "  match (x, y) with\n"
                    "    (0, []) -> []\n"
                    "  | (m, []) -> m\n"
                    "  | (_, 5) -> 5 + \"hi\"\n";
  SeminalReport R = run(Src);
  ASSERT_FALSE(R.Suggestions.empty()) << R.conventionalMessage();
  bool FoundPatternFix = false;
  for (const auto &S : R.Suggestions)
    if (S.Kind == ChangeKind::PatternFix && S.PatternBefore == "5")
      FoundPatternFix = true;
  EXPECT_TRUE(FoundPatternFix) << allSuggestions(R);
}

TEST(TriageTest, TriagedMessageSaysErrorsRemain) {
  std::string Src = "let go y =\n"
                    "  let x = 3 + true in\n"
                    "  let w = 4 + \"hi\" in\n"
                    "  y\n";
  SeminalReport R = run(Src);
  ASSERT_FALSE(R.Suggestions.empty());
  bool AnyTriaged = false;
  for (const auto &S : R.Suggestions)
    if (S.ViaTriage) {
      AnyTriaged = true;
      std::string Msg = renderSuggestion(S);
      EXPECT_NE(Msg.find("several type errors"), std::string::npos) << Msg;
      EXPECT_NE(Msg.find("other type errors remain"), std::string::npos)
          << Msg;
    }
  EXPECT_TRUE(AnyTriaged) << allSuggestions(R);
}

TEST(TriageTest, BrokenScrutineeFoundInPhaseOne) {
  std::string Src = "let f a =\n"
                    "  match (a + \"x\", a) with\n"
                    "    (_, 0) -> 1 + true\n"
                    "  | _ -> 2 + \"y\"\n";
  SeminalReport R = run(Src);
  ASSERT_FALSE(R.Suggestions.empty());
  // Phase 1 should focus the scrutinee; a fix inside `a + "x"` appears.
  bool FoundScrutineeFix = false;
  for (const auto &S : R.Suggestions)
    if (S.Original && printExpr(*S.Original).find("\"x\"") == 0)
      FoundScrutineeFix = true;
  EXPECT_TRUE(FoundScrutineeFix) << allSuggestions(R);
}

//===----------------------------------------------------------------------===//
// Soundness: applying an untriaged suggestion yields a well-typed program
//===----------------------------------------------------------------------===//

class SuggestionSoundness : public ::testing::TestWithParam<const char *> {};

TEST_P(SuggestionSoundness, UntriagedSuggestionsTypecheck) {
  SeminalReport R = run(GetParam());
  ASSERT_FALSE(R.InputTypechecks);
  for (const auto &S : R.Suggestions) {
    if (S.ViaTriage)
      continue;
    TypecheckResult TR = typecheckProgram(S.Modified);
    EXPECT_TRUE(TR.ok()) << "suggestion left program ill-typed:\n"
                         << renderSuggestion(S) << "\nerror: "
                         << (TR.Error ? TR.Error->Message : "");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, SuggestionSoundness,
    ::testing::Values(
        "let x = 1 + \"two\"",
        "let f (x, y) = x + y\nlet z = f 1 2",
        "let f x y = x + y\nlet z = f (1, 2)",
        "let x = [1, 2, 3]\nlet y = List.map (fun v -> v + 1) x",
        "let x = if true then 1",
        "let r = ref 0\nlet y = r + 1",
        "let l = 1 :: 2",
        "let f x = x ^ \"!\"\nlet y = f 3",
        "let len xs = match xs with [] -> 0 | _ :: t -> 1 + len t",
        "let swap (a, b) = (b, a)\nlet p = swap 1 2",
        "let x = List.nth 0 [1; 2]",
        "let s = \"a\" + \"b\"",
        "let f a b c = a + b + c\nlet x = f 1 2 + 3",
        "let x = (1, 2)\nlet y = fst x + snd x + x"));

//===----------------------------------------------------------------------===//
// Oracle accounting
//===----------------------------------------------------------------------===//

TEST(OracleTest, CallsAreCounted) {
  CamlOracle O;
  ParseResult P = parseProgram("let x = 1");
  ASSERT_TRUE(P.ok());
  EXPECT_EQ(O.callCount(), 0u);
  O.typechecks(*P.Prog);
  O.typechecks(*P.Prog);
  EXPECT_EQ(O.callCount(), 2u);
  O.resetCallCount();
  EXPECT_EQ(O.callCount(), 0u);
}

TEST(OracleTest, ReportsOracleCallsInReport) {
  SeminalReport R = run("let x = 1 + \"two\"");
  EXPECT_GT(R.OracleCalls, 0u);
}

TEST(OracleTest, GatingReducesOracleCalls) {
  // A 4-argument call whose arguments can never be fixed by permutation:
  // gating should prune the 4!-sized family.
  std::string Src = "let f a b c = a + b + c\n"
                    "let x = f 1 2 \"s\" true";
  SeminalOptions Gated;
  SeminalReport RGated = run(Src, Gated);
  SeminalOptions Ungated;
  Ungated.Search.Enum.GateExpensiveChanges = false;
  SeminalReport RUngated = run(Src, Ungated);
  EXPECT_LT(RGated.OracleCalls, RUngated.OracleCalls);
}

TEST(OracleTest, BudgetStopsSearchGracefully) {
  SeminalOptions Opts;
  Opts.Search.MaxOracleCalls = 5;
  SeminalReport R = run("let x = 1 + \"two\"\nlet y = x + 1", Opts);
  EXPECT_TRUE(R.BudgetExhausted);
  EXPECT_LE(R.OracleCalls, 6u);
}

//===----------------------------------------------------------------------===//
// Ranker unit behavior
//===----------------------------------------------------------------------===//

TEST(RankerTest, KindOrdering) {
  Suggestion C, A, Rm, T;
  C.Kind = ChangeKind::Constructive;
  A.Kind = ChangeKind::Adaptation;
  Rm.Kind = ChangeKind::Removal;
  T.Kind = ChangeKind::Constructive;
  T.ViaTriage = true;
  EXPECT_LT(scoreSuggestion(C), scoreSuggestion(A));
  EXPECT_LT(scoreSuggestion(A), scoreSuggestion(Rm));
  EXPECT_LT(scoreSuggestion(Rm), scoreSuggestion(T));
}

TEST(RankerTest, SmallerWinsForConstructive) {
  Suggestion Small, Big;
  Small.Kind = Big.Kind = ChangeKind::Constructive;
  Small.OriginalSize = 2;
  Big.OriginalSize = 10;
  EXPECT_LT(scoreSuggestion(Small), scoreSuggestion(Big));
}

TEST(RankerTest, LargerWinsForAdaptation) {
  Suggestion Small, Big;
  Small.Kind = Big.Kind = ChangeKind::Adaptation;
  Small.OriginalSize = 2;
  Big.OriginalSize = 10;
  EXPECT_LT(scoreSuggestion(Big), scoreSuggestion(Small));
}

TEST(RankerTest, FewerTriageRemovalsWin) {
  Suggestion A, B;
  A.Kind = B.Kind = ChangeKind::Constructive;
  A.ViaTriage = B.ViaTriage = true;
  A.TriageRemovals = 1;
  B.TriageRemovals = 3;
  EXPECT_LT(scoreSuggestion(A), scoreSuggestion(B));
}

TEST(RankerTest, RightBiasInApplications) {
  Suggestion Left, Right;
  Left.Kind = Right.Kind = ChangeKind::Removal;
  Left.OriginalSize = Right.OriginalSize = 3;
  Left.Path.Steps = {0};
  Right.Path.Steps = {1};
  EXPECT_LT(scoreSuggestion(Right), scoreSuggestion(Left));
}

TEST(RankerTest, DeduplicationDropsIdenticalSuggestions) {
  std::vector<Suggestion> Suggestions;
  for (int I = 0; I < 3; ++I) {
    Suggestion S;
    S.Kind = ChangeKind::Removal;
    S.Original = makeVar("x");
    S.Replacement = makeWildcard();
    S.Description = "remove this expression";
    Suggestions.push_back(std::move(S));
  }
  rankSuggestions(Suggestions);
  EXPECT_EQ(Suggestions.size(), 1u);
}

} // namespace
