
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ChangeRegistry.cpp" "src/core/CMakeFiles/seminal_core.dir/ChangeRegistry.cpp.o" "gcc" "src/core/CMakeFiles/seminal_core.dir/ChangeRegistry.cpp.o.d"
  "/root/repo/src/core/Enumerator.cpp" "src/core/CMakeFiles/seminal_core.dir/Enumerator.cpp.o" "gcc" "src/core/CMakeFiles/seminal_core.dir/Enumerator.cpp.o.d"
  "/root/repo/src/core/Message.cpp" "src/core/CMakeFiles/seminal_core.dir/Message.cpp.o" "gcc" "src/core/CMakeFiles/seminal_core.dir/Message.cpp.o.d"
  "/root/repo/src/core/Oracle.cpp" "src/core/CMakeFiles/seminal_core.dir/Oracle.cpp.o" "gcc" "src/core/CMakeFiles/seminal_core.dir/Oracle.cpp.o.d"
  "/root/repo/src/core/Ranker.cpp" "src/core/CMakeFiles/seminal_core.dir/Ranker.cpp.o" "gcc" "src/core/CMakeFiles/seminal_core.dir/Ranker.cpp.o.d"
  "/root/repo/src/core/Searcher.cpp" "src/core/CMakeFiles/seminal_core.dir/Searcher.cpp.o" "gcc" "src/core/CMakeFiles/seminal_core.dir/Searcher.cpp.o.d"
  "/root/repo/src/core/Seminal.cpp" "src/core/CMakeFiles/seminal_core.dir/Seminal.cpp.o" "gcc" "src/core/CMakeFiles/seminal_core.dir/Seminal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minicaml/CMakeFiles/seminal_minicaml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/seminal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
