file(REMOVE_RECURSE
  "CMakeFiles/seminal_core.dir/ChangeRegistry.cpp.o"
  "CMakeFiles/seminal_core.dir/ChangeRegistry.cpp.o.d"
  "CMakeFiles/seminal_core.dir/Enumerator.cpp.o"
  "CMakeFiles/seminal_core.dir/Enumerator.cpp.o.d"
  "CMakeFiles/seminal_core.dir/Message.cpp.o"
  "CMakeFiles/seminal_core.dir/Message.cpp.o.d"
  "CMakeFiles/seminal_core.dir/Oracle.cpp.o"
  "CMakeFiles/seminal_core.dir/Oracle.cpp.o.d"
  "CMakeFiles/seminal_core.dir/Ranker.cpp.o"
  "CMakeFiles/seminal_core.dir/Ranker.cpp.o.d"
  "CMakeFiles/seminal_core.dir/Searcher.cpp.o"
  "CMakeFiles/seminal_core.dir/Searcher.cpp.o.d"
  "CMakeFiles/seminal_core.dir/Seminal.cpp.o"
  "CMakeFiles/seminal_core.dir/Seminal.cpp.o.d"
  "libseminal_core.a"
  "libseminal_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seminal_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
