# Empty dependencies file for seminal_core.
# This may be replaced when dependencies are built.
