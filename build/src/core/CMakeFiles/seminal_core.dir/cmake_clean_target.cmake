file(REMOVE_RECURSE
  "libseminal_core.a"
)
