# Empty dependencies file for seminal_support.
# This may be replaced when dependencies are built.
