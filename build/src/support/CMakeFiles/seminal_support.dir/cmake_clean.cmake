file(REMOVE_RECURSE
  "CMakeFiles/seminal_support.dir/SourceLoc.cpp.o"
  "CMakeFiles/seminal_support.dir/SourceLoc.cpp.o.d"
  "CMakeFiles/seminal_support.dir/Stats.cpp.o"
  "CMakeFiles/seminal_support.dir/Stats.cpp.o.d"
  "CMakeFiles/seminal_support.dir/StrUtil.cpp.o"
  "CMakeFiles/seminal_support.dir/StrUtil.cpp.o.d"
  "libseminal_support.a"
  "libseminal_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seminal_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
