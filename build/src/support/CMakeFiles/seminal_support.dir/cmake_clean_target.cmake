file(REMOVE_RECURSE
  "libseminal_support.a"
)
