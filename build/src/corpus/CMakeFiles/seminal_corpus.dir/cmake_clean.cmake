file(REMOVE_RECURSE
  "CMakeFiles/seminal_corpus.dir/Generator.cpp.o"
  "CMakeFiles/seminal_corpus.dir/Generator.cpp.o.d"
  "CMakeFiles/seminal_corpus.dir/Mutation.cpp.o"
  "CMakeFiles/seminal_corpus.dir/Mutation.cpp.o.d"
  "CMakeFiles/seminal_corpus.dir/Programs.cpp.o"
  "CMakeFiles/seminal_corpus.dir/Programs.cpp.o.d"
  "CMakeFiles/seminal_corpus.dir/RandomAst.cpp.o"
  "CMakeFiles/seminal_corpus.dir/RandomAst.cpp.o.d"
  "libseminal_corpus.a"
  "libseminal_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seminal_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
