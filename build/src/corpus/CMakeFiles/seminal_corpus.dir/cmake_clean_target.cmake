file(REMOVE_RECURSE
  "libseminal_corpus.a"
)
