
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/Generator.cpp" "src/corpus/CMakeFiles/seminal_corpus.dir/Generator.cpp.o" "gcc" "src/corpus/CMakeFiles/seminal_corpus.dir/Generator.cpp.o.d"
  "/root/repo/src/corpus/Mutation.cpp" "src/corpus/CMakeFiles/seminal_corpus.dir/Mutation.cpp.o" "gcc" "src/corpus/CMakeFiles/seminal_corpus.dir/Mutation.cpp.o.d"
  "/root/repo/src/corpus/Programs.cpp" "src/corpus/CMakeFiles/seminal_corpus.dir/Programs.cpp.o" "gcc" "src/corpus/CMakeFiles/seminal_corpus.dir/Programs.cpp.o.d"
  "/root/repo/src/corpus/RandomAst.cpp" "src/corpus/CMakeFiles/seminal_corpus.dir/RandomAst.cpp.o" "gcc" "src/corpus/CMakeFiles/seminal_corpus.dir/RandomAst.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minicaml/CMakeFiles/seminal_minicaml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/seminal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
