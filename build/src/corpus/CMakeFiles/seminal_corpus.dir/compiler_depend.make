# Empty compiler generated dependencies file for seminal_corpus.
# This may be replaced when dependencies are built.
