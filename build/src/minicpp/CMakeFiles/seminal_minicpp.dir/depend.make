# Empty dependencies file for seminal_minicpp.
# This may be replaced when dependencies are built.
