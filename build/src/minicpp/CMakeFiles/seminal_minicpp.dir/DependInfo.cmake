
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minicpp/CcAst.cpp" "src/minicpp/CMakeFiles/seminal_minicpp.dir/CcAst.cpp.o" "gcc" "src/minicpp/CMakeFiles/seminal_minicpp.dir/CcAst.cpp.o.d"
  "/root/repo/src/minicpp/CcSearch.cpp" "src/minicpp/CMakeFiles/seminal_minicpp.dir/CcSearch.cpp.o" "gcc" "src/minicpp/CMakeFiles/seminal_minicpp.dir/CcSearch.cpp.o.d"
  "/root/repo/src/minicpp/CcStl.cpp" "src/minicpp/CMakeFiles/seminal_minicpp.dir/CcStl.cpp.o" "gcc" "src/minicpp/CMakeFiles/seminal_minicpp.dir/CcStl.cpp.o.d"
  "/root/repo/src/minicpp/CcTypeck.cpp" "src/minicpp/CMakeFiles/seminal_minicpp.dir/CcTypeck.cpp.o" "gcc" "src/minicpp/CMakeFiles/seminal_minicpp.dir/CcTypeck.cpp.o.d"
  "/root/repo/src/minicpp/CcTypes.cpp" "src/minicpp/CMakeFiles/seminal_minicpp.dir/CcTypes.cpp.o" "gcc" "src/minicpp/CMakeFiles/seminal_minicpp.dir/CcTypes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/seminal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
