file(REMOVE_RECURSE
  "CMakeFiles/seminal_minicpp.dir/CcAst.cpp.o"
  "CMakeFiles/seminal_minicpp.dir/CcAst.cpp.o.d"
  "CMakeFiles/seminal_minicpp.dir/CcSearch.cpp.o"
  "CMakeFiles/seminal_minicpp.dir/CcSearch.cpp.o.d"
  "CMakeFiles/seminal_minicpp.dir/CcStl.cpp.o"
  "CMakeFiles/seminal_minicpp.dir/CcStl.cpp.o.d"
  "CMakeFiles/seminal_minicpp.dir/CcTypeck.cpp.o"
  "CMakeFiles/seminal_minicpp.dir/CcTypeck.cpp.o.d"
  "CMakeFiles/seminal_minicpp.dir/CcTypes.cpp.o"
  "CMakeFiles/seminal_minicpp.dir/CcTypes.cpp.o.d"
  "libseminal_minicpp.a"
  "libseminal_minicpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seminal_minicpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
