file(REMOVE_RECURSE
  "libseminal_minicpp.a"
)
