
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minicaml/Ast.cpp" "src/minicaml/CMakeFiles/seminal_minicaml.dir/Ast.cpp.o" "gcc" "src/minicaml/CMakeFiles/seminal_minicaml.dir/Ast.cpp.o.d"
  "/root/repo/src/minicaml/Eval.cpp" "src/minicaml/CMakeFiles/seminal_minicaml.dir/Eval.cpp.o" "gcc" "src/minicaml/CMakeFiles/seminal_minicaml.dir/Eval.cpp.o.d"
  "/root/repo/src/minicaml/Infer.cpp" "src/minicaml/CMakeFiles/seminal_minicaml.dir/Infer.cpp.o" "gcc" "src/minicaml/CMakeFiles/seminal_minicaml.dir/Infer.cpp.o.d"
  "/root/repo/src/minicaml/Lexer.cpp" "src/minicaml/CMakeFiles/seminal_minicaml.dir/Lexer.cpp.o" "gcc" "src/minicaml/CMakeFiles/seminal_minicaml.dir/Lexer.cpp.o.d"
  "/root/repo/src/minicaml/Parser.cpp" "src/minicaml/CMakeFiles/seminal_minicaml.dir/Parser.cpp.o" "gcc" "src/minicaml/CMakeFiles/seminal_minicaml.dir/Parser.cpp.o.d"
  "/root/repo/src/minicaml/Printer.cpp" "src/minicaml/CMakeFiles/seminal_minicaml.dir/Printer.cpp.o" "gcc" "src/minicaml/CMakeFiles/seminal_minicaml.dir/Printer.cpp.o.d"
  "/root/repo/src/minicaml/Stdlib.cpp" "src/minicaml/CMakeFiles/seminal_minicaml.dir/Stdlib.cpp.o" "gcc" "src/minicaml/CMakeFiles/seminal_minicaml.dir/Stdlib.cpp.o.d"
  "/root/repo/src/minicaml/Types.cpp" "src/minicaml/CMakeFiles/seminal_minicaml.dir/Types.cpp.o" "gcc" "src/minicaml/CMakeFiles/seminal_minicaml.dir/Types.cpp.o.d"
  "/root/repo/src/minicaml/Unify.cpp" "src/minicaml/CMakeFiles/seminal_minicaml.dir/Unify.cpp.o" "gcc" "src/minicaml/CMakeFiles/seminal_minicaml.dir/Unify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/seminal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
