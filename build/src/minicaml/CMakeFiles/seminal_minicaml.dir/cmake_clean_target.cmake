file(REMOVE_RECURSE
  "libseminal_minicaml.a"
)
