file(REMOVE_RECURSE
  "CMakeFiles/seminal_minicaml.dir/Ast.cpp.o"
  "CMakeFiles/seminal_minicaml.dir/Ast.cpp.o.d"
  "CMakeFiles/seminal_minicaml.dir/Eval.cpp.o"
  "CMakeFiles/seminal_minicaml.dir/Eval.cpp.o.d"
  "CMakeFiles/seminal_minicaml.dir/Infer.cpp.o"
  "CMakeFiles/seminal_minicaml.dir/Infer.cpp.o.d"
  "CMakeFiles/seminal_minicaml.dir/Lexer.cpp.o"
  "CMakeFiles/seminal_minicaml.dir/Lexer.cpp.o.d"
  "CMakeFiles/seminal_minicaml.dir/Parser.cpp.o"
  "CMakeFiles/seminal_minicaml.dir/Parser.cpp.o.d"
  "CMakeFiles/seminal_minicaml.dir/Printer.cpp.o"
  "CMakeFiles/seminal_minicaml.dir/Printer.cpp.o.d"
  "CMakeFiles/seminal_minicaml.dir/Stdlib.cpp.o"
  "CMakeFiles/seminal_minicaml.dir/Stdlib.cpp.o.d"
  "CMakeFiles/seminal_minicaml.dir/Types.cpp.o"
  "CMakeFiles/seminal_minicaml.dir/Types.cpp.o.d"
  "CMakeFiles/seminal_minicaml.dir/Unify.cpp.o"
  "CMakeFiles/seminal_minicaml.dir/Unify.cpp.o.d"
  "libseminal_minicaml.a"
  "libseminal_minicaml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seminal_minicaml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
