# Empty dependencies file for seminal_minicaml.
# This may be replaced when dependencies are built.
