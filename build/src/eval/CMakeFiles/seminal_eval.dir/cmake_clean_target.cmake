file(REMOVE_RECURSE
  "libseminal_eval.a"
)
