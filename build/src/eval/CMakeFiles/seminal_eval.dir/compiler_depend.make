# Empty compiler generated dependencies file for seminal_eval.
# This may be replaced when dependencies are built.
