file(REMOVE_RECURSE
  "CMakeFiles/seminal_eval.dir/Categories.cpp.o"
  "CMakeFiles/seminal_eval.dir/Categories.cpp.o.d"
  "CMakeFiles/seminal_eval.dir/Judge.cpp.o"
  "CMakeFiles/seminal_eval.dir/Judge.cpp.o.d"
  "CMakeFiles/seminal_eval.dir/Runner.cpp.o"
  "CMakeFiles/seminal_eval.dir/Runner.cpp.o.d"
  "libseminal_eval.a"
  "libseminal_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seminal_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
