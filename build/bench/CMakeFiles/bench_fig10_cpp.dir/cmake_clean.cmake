file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_cpp.dir/bench_fig10_cpp.cpp.o"
  "CMakeFiles/bench_fig10_cpp.dir/bench_fig10_cpp.cpp.o.d"
  "bench_fig10_cpp"
  "bench_fig10_cpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_cpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
