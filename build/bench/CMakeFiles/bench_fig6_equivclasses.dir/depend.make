# Empty dependencies file for bench_fig6_equivclasses.
# This may be replaced when dependencies are built.
