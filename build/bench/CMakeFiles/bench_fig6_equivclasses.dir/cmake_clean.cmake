file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_equivclasses.dir/bench_fig6_equivclasses.cpp.o"
  "CMakeFiles/bench_fig6_equivclasses.dir/bench_fig6_equivclasses.cpp.o.d"
  "bench_fig6_equivclasses"
  "bench_fig6_equivclasses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_equivclasses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
