
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_equivclasses.cpp" "bench/CMakeFiles/bench_fig6_equivclasses.dir/bench_fig6_equivclasses.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6_equivclasses.dir/bench_fig6_equivclasses.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/seminal_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/seminal_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/seminal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/minicaml/CMakeFiles/seminal_minicaml.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/seminal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
