# Empty compiler generated dependencies file for bench_oracle_calls.
# This may be replaced when dependencies are built.
