file(REMOVE_RECURSE
  "CMakeFiles/bench_oracle_calls.dir/bench_oracle_calls.cpp.o"
  "CMakeFiles/bench_oracle_calls.dir/bench_oracle_calls.cpp.o.d"
  "bench_oracle_calls"
  "bench_oracle_calls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oracle_calls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
