# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/printer_test[1]_include.cmake")
include("/root/repo/build/tests/infer_test[1]_include.cmake")
include("/root/repo/build/tests/enumerator_test[1]_include.cmake")
include("/root/repo/build/tests/searcher_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/minicpp_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/registry_test[1]_include.cmake")
include("/root/repo/build/tests/message_test[1]_include.cmake")
include("/root/repo/build/tests/infer_advanced_test[1]_include.cmake")
include("/root/repo/build/tests/minicpp_scenario_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
