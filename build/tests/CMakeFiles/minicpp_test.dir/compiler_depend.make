# Empty compiler generated dependencies file for minicpp_test.
# This may be replaced when dependencies are built.
