file(REMOVE_RECURSE
  "CMakeFiles/minicpp_test.dir/MiniCppTest.cpp.o"
  "CMakeFiles/minicpp_test.dir/MiniCppTest.cpp.o.d"
  "minicpp_test"
  "minicpp_test.pdb"
  "minicpp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicpp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
