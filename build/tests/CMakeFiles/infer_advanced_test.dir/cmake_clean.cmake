file(REMOVE_RECURSE
  "CMakeFiles/infer_advanced_test.dir/InferAdvancedTest.cpp.o"
  "CMakeFiles/infer_advanced_test.dir/InferAdvancedTest.cpp.o.d"
  "infer_advanced_test"
  "infer_advanced_test.pdb"
  "infer_advanced_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infer_advanced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
