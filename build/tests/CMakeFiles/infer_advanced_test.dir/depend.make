# Empty dependencies file for infer_advanced_test.
# This may be replaced when dependencies are built.
