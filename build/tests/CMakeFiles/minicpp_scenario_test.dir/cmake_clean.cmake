file(REMOVE_RECURSE
  "CMakeFiles/minicpp_scenario_test.dir/MiniCppScenarioTest.cpp.o"
  "CMakeFiles/minicpp_scenario_test.dir/MiniCppScenarioTest.cpp.o.d"
  "minicpp_scenario_test"
  "minicpp_scenario_test.pdb"
  "minicpp_scenario_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minicpp_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
