# Empty dependencies file for minicpp_scenario_test.
# This may be replaced when dependencies are built.
