# Empty compiler generated dependencies file for cpp_templates.
# This may be replaced when dependencies are built.
