file(REMOVE_RECURSE
  "CMakeFiles/cpp_templates.dir/cpp_templates.cpp.o"
  "CMakeFiles/cpp_templates.dir/cpp_templates.cpp.o.d"
  "cpp_templates"
  "cpp_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpp_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
