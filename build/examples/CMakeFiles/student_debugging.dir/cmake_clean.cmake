file(REMOVE_RECURSE
  "CMakeFiles/student_debugging.dir/student_debugging.cpp.o"
  "CMakeFiles/student_debugging.dir/student_debugging.cpp.o.d"
  "student_debugging"
  "student_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/student_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
