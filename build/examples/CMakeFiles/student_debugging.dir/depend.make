# Empty dependencies file for student_debugging.
# This may be replaced when dependencies are built.
