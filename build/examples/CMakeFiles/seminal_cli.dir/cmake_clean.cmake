file(REMOVE_RECURSE
  "CMakeFiles/seminal_cli.dir/seminal_cli.cpp.o"
  "CMakeFiles/seminal_cli.dir/seminal_cli.cpp.o.d"
  "seminal_cli"
  "seminal_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seminal_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
