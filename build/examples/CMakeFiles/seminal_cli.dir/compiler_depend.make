# Empty compiler generated dependencies file for seminal_cli.
# This may be replaced when dependencies are built.
