# Empty compiler generated dependencies file for multi_error_triage.
# This may be replaced when dependencies are built.
