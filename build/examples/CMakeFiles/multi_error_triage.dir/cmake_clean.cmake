file(REMOVE_RECURSE
  "CMakeFiles/multi_error_triage.dir/multi_error_triage.cpp.o"
  "CMakeFiles/multi_error_triage.dir/multi_error_triage.cpp.o.d"
  "multi_error_triage"
  "multi_error_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_error_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
