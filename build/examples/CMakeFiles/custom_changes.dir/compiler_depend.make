# Empty compiler generated dependencies file for custom_changes.
# This may be replaced when dependencies are built.
