file(REMOVE_RECURSE
  "CMakeFiles/custom_changes.dir/custom_changes.cpp.o"
  "CMakeFiles/custom_changes.dir/custom_changes.cpp.o.d"
  "custom_changes"
  "custom_changes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
