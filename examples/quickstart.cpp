//===- quickstart.cpp - Smallest end-to-end use of the library ------------==//
//
// Feed an ill-typed mini-Caml program to the public API, compare the
// conventional type-checker message with the search-based suggestion,
// and inspect the ranked alternatives.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Seminal.h"

#include <cstdio>

using namespace seminal;

int main() {
  // A classic beginner mistake: the function takes curried arguments but
  // the caller passes one tuple.
  std::string Source = "let area w h = w * h\n"
                       "let a = area (3, 4)\n";

  std::printf("Input program:\n%s\n", Source.c_str());

  SeminalReport Report = runSeminalOnSource(Source);

  if (Report.SyntaxError) {
    std::printf("syntax error: %s\n", Report.SyntaxError->str().c_str());
    return 1;
  }
  if (Report.InputTypechecks) {
    std::printf("The program already type-checks.\n");
    return 0;
  }

  std::printf("Conventional type-checker:\n  %s\n\n",
              Report.conventionalMessage().c_str());
  std::printf("Search-based suggestion (%zu oracle calls):\n%s\n\n",
              Report.OracleCalls, Report.bestMessage().c_str());

  std::printf("All %zu ranked suggestions:\n", Report.Suggestions.size());
  for (size_t I = 0; I < Report.Suggestions.size(); ++I) {
    std::printf("--- #%zu ---\n%s\n", I + 1,
                renderSuggestion(Report.Suggestions[I]).c_str());
  }
  return 0;
}
