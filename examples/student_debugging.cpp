//===- student_debugging.cpp - A debugging session over student code ------==//
//
// Walks through the kind of session the paper's data collection captured
// (Section 3.1): a student's file fails to type-check several times in a
// row; at each step we show the conventional message next to the
// search-based one, apply the top suggestion's intent, and recompile.
// The three broken revisions are the paper's own Figures 2, 8 and 9.
//
//===----------------------------------------------------------------------===//

#include "core/Seminal.h"

#include <cstdio>
#include <vector>

using namespace seminal;

namespace {

struct Revision {
  const char *What;
  const char *Source;
};

} // namespace

int main() {
  std::vector<Revision> Session = {
      {"revision 1: map2 called with a tupled lambda (Figure 2)",
       "let map2 f aList bList =\n"
       "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
       "let lst = map2 (fun (x, y) -> x + y) [1;2;3] [4;5;6]\n"
       "let ans = List.filter (fun x -> x == 0) lst\n"},
      {"revision 2: add's arguments in the wrong order (Figure 8)",
       "let add str lst = if List.mem str lst then lst else str :: lst\n"
       "let vList1 = [\"a\"; \"b\"]\n"
       "let s = \"c\"\n"
       "let out = add vList1 s\n"},
      {"revision 3: List.nth partially applied (Figure 9)",
       "type move = For of int * move list | Stop\n"
       "let rec loop movelist acc =\n"
       "  match movelist with\n"
       "    [] -> acc\n"
       "  | For (moves, lst) :: tl ->\n"
       "      let rec finalLst index searchLst =\n"
       "        if index = moves - 1 then []\n"
       "        else (List.nth searchLst) :: finalLst (index + 1) searchLst\n"
       "      in loop (finalLst 0 lst) acc\n"
       "  | Stop :: tl -> loop tl acc\n"},
      {"revision 4: everything fixed",
       "let map2 f aList bList =\n"
       "  List.map (fun (a, b) -> f a b) (List.combine aList bList)\n"
       "let lst = map2 (fun x y -> x + y) [1;2;3] [4;5;6]\n"
       "let ans = List.filter (fun x -> x == 0) lst\n"},
  };

  for (const Revision &Rev : Session) {
    std::printf("================================================\n");
    std::printf("%s\n", Rev.What);
    std::printf("================================================\n");
    std::printf("%s\n", Rev.Source);

    SeminalReport Report = runSeminalOnSource(Rev.Source);
    if (Report.InputTypechecks) {
      std::printf("-> compiles cleanly; session over.\n");
      continue;
    }
    std::printf("Type-checker says:\n  %s\n\n",
                Report.conventionalMessage().c_str());
    std::printf("SEMINAL says:\n%s\n\n", Report.bestMessage().c_str());
  }
  return 0;
}
