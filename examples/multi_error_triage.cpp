//===- multi_error_triage.cpp - Triage on files with several errors -------==//
//
// Demonstrates Section 2.4: programs whose one declaration contains
// several independent type errors. Without triage the only honest
// suggestion is removing the whole thing; with triage the system focuses
// on one problem while wildcarding the rest, and says so in the message.
// Compares both configurations side by side and shows the pattern-phase
// handling of the paper's Figure 4.
//
//===----------------------------------------------------------------------===//

#include "core/Seminal.h"

#include <cstdio>

using namespace seminal;

namespace {

void compare(const char *Title, const char *Source) {
  std::printf("================================================\n");
  std::printf("%s\n", Title);
  std::printf("================================================\n%s\n",
              Source);

  SeminalOptions WithTriage;
  SeminalReport RTriage = runSeminalOnSource(Source, WithTriage);

  SeminalOptions NoTriage;
  NoTriage.Search.EnableTriage = false;
  SeminalReport RPlain = runSeminalOnSource(Source, NoTriage);

  std::printf("--- without triage (%zu oracle calls) ---\n%s\n\n",
              RPlain.OracleCalls, RPlain.bestMessage().c_str());
  std::printf("--- with triage (%zu oracle calls) ---\n%s\n\n",
              RTriage.OracleCalls, RTriage.bestMessage().c_str());
}

} // namespace

int main() {
  compare("Two independent errors in one function (Section 2.4's "
          "opening example)",
          "let compute y =\n"
          "  let x = 3 + true in\n"
          "  let z = y * 2 in\n"
          "  let w = 4 + \"hi\" in\n"
          "  z\n");

  compare("A match with broken patterns and bodies (Figure 4)",
          "let f x y =\n"
          "  let n = List.length y in\n"
          "  match (x, y) with\n"
          "    (0, []) -> []\n"
          "  | (m, []) -> m\n"
          "  | (_, 5) -> 5 + \"hi\"\n");

  compare("Misspelled identifier plus an unrelated arithmetic error",
          "let report xs =\n"
          "  let banner = \"total: \" ^ 7 in\n"
          "  let n = List.lenth xs in\n"
          "  banner ^ string_of_int n\n");
  return 0;
}
