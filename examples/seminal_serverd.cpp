//===- seminal_serverd.cpp - Search-as-a-service daemon ---------------------==//
//
// The long-lived counterpart of seminal_cli (DESIGN.md section 13): one
// process holds every editor session's warm search state -- prefix
// checkpoints, interned-AST verdict caches, conventional-error memos --
// so an edit-resubmit only pays for the suffix that changed. Requests
// are one JSON object per line on stdin (--stdio, the default) or on a
// Unix domain socket (--socket=PATH); both transports can run at once.
//
// Sessions are sharded across worker threads by name, so concurrent
// clients never contend: each session's requests run FIFO on one
// worker, and suggestions are bit-identical to a cold seminal_cli run
// of the same source.
//
// Observability (DESIGN.md section 14): --metrics-port serves
// GET /metrics (Prometheus) and /healthz on localhost; --log-level
// emits structured per-request lines on stderr (--log-json for JSONL);
// --trace-slow-ms captures Chrome traces of slow requests into a
// bounded ring of files under --trace-dir.
//
// Continuous profiling (DESIGN.md section 16): the sampling profiler is
// on by default at 99 Hz (--profile-hz=0 disables it); capture windows
// via the "profile" verb or GET /debug/profile?seconds=N on the metrics
// port. --slo-target-ms / --slo-objective configure the warm-latency
// SLO whose burn-rate gauges /metrics exports.
//
// Usage:
//   seminal_serverd [--stdio] [--socket=PATH] [--threads=N]
//                   [--evict-bytes=N] [--max-suggestions=N]
//                   [--metrics-port=N] [--log-level=LVL] [--log-json]
//                   [--trace-slow-ms=N] [--trace-dir=PATH] [--trace-ring=N]
//                   [--profile-hz=N] [--slo-target-ms=N] [--slo-objective=P]
//
// Try it (pipe a request line into --stdio mode):
//   printf '%s\n' '{"method":"check","id":1,"source":"..."}' | seminal_serverd
//
//===----------------------------------------------------------------------===//

#include "obs/Log.h"
#include "obs/SlowTraceRing.h"
#include "server/MetricsHttp.h"
#include "server/Server.h"
#include "support/Profiler.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <thread>

using namespace seminal;
using namespace seminal::server;

namespace {

void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--stdio] [--socket=PATH] [--threads=N]\n"
               "          [--evict-bytes=N] [--max-suggestions=N]\n"
               "          [--metrics-port=N] [--log-level=LVL] [--log-json]\n"
               "          [--trace-slow-ms=N] [--trace-dir=PATH]\n"
               "          [--trace-ring=N] [--profile-hz=N]\n"
               "          [--slo-target-ms=N] [--slo-objective=P]\n"
               "  --stdio            serve JSONL requests on stdin/stdout\n"
               "                     (default when --socket is absent)\n"
               "  --socket=PATH      also accept connections on a Unix\n"
               "                     domain socket at PATH\n"
               "  --threads=N        worker (= session shard) count;\n"
               "                     default: hardware concurrency\n"
               "  --evict-bytes=N    per-session arena watermark; crossing\n"
               "                     it drops that session's warm state\n"
               "                     (default 64 MiB)\n"
               "  --max-suggestions=N\n"
               "                     default suggestion cap per check\n"
               "                     (requests may override)\n"
               "  --metrics-port=N   serve GET /metrics, /metrics.json and\n"
               "                     /healthz on 127.0.0.1:N (0 = ephemeral;\n"
               "                     the bound port is printed to stderr)\n"
               "  --log-level=LVL    structured request log on stderr:\n"
               "                     debug|info|warn|error|off (default warn)\n"
               "  --log-json         log JSON lines instead of logfmt\n"
               "  --trace-slow-ms=N  capture a Chrome trace of any request\n"
               "                     slower than N ms (0 = every request)\n"
               "  --trace-dir=PATH   slow-trace directory (default\n"
               "                     seminal-slow-traces)\n"
               "  --trace-ring=N     keep at most N slow-trace files\n"
               "                     (default 8)\n"
               "  --profile-hz=N     sampling-profiler frequency (default\n"
               "                     99; 0 = off). Windows are served by\n"
               "                     the \"profile\" verb and by\n"
               "                     GET /debug/profile?seconds=N\n"
               "  --slo-target-ms=N  warm-latency SLO target (default 50)\n"
               "  --slo-objective=P  %% of warm checks that must meet the\n"
               "                     target (default 99)\n",
               Prog);
}

} // namespace

int main(int Argc, char **Argv) {
  ServerOptions Opts;
  std::string SocketPath;
  bool Stdio = false;
  bool SawTransport = false;
  int MetricsPort = -1;
  obs::LogLevel Level = obs::LogLevel::Warn;
  bool LogJson = false;
  double TraceSlowMs = -1.0;
  std::string TraceDir = "seminal-slow-traces";
  size_t TraceRing = 8;
  int ProfileHz = 99;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--stdio") == 0) {
      Stdio = true;
      SawTransport = true;
    } else if (std::strncmp(Arg, "--socket=", 9) == 0) {
      SocketPath = Arg + 9;
      SawTransport = true;
      if (SocketPath.empty()) {
        std::fprintf(stderr, "--socket needs a path\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strncmp(Arg, "--threads=", 10) == 0) {
      int N = std::atoi(Arg + 10);
      if (N <= 0) {
        std::fprintf(stderr, "--threads needs a positive count\n");
        usage(Argv[0]);
        return 2;
      }
      Opts.Threads = unsigned(N);
    } else if (std::strncmp(Arg, "--evict-bytes=", 14) == 0) {
      long long N = std::atoll(Arg + 14);
      if (N <= 0) {
        std::fprintf(stderr, "--evict-bytes needs a positive byte count\n");
        usage(Argv[0]);
        return 2;
      }
      Opts.Session.ArenaEvictBytes = uint64_t(N);
    } else if (std::strncmp(Arg, "--max-suggestions=", 18) == 0) {
      int N = std::atoi(Arg + 18);
      if (N <= 0) {
        std::fprintf(stderr, "--max-suggestions needs a positive count\n");
        usage(Argv[0]);
        return 2;
      }
      Opts.Session.Base.MaxSuggestions = size_t(N);
    } else if (std::strncmp(Arg, "--metrics-port=", 15) == 0) {
      int N = std::atoi(Arg + 15);
      if (N < 0 || N > 65535 ||
          (N == 0 && std::strcmp(Arg + 15, "0") != 0)) {
        std::fprintf(stderr, "--metrics-port needs a port number (0-65535)\n");
        usage(Argv[0]);
        return 2;
      }
      MetricsPort = N;
    } else if (std::strncmp(Arg, "--log-level=", 12) == 0) {
      if (!obs::parseLogLevel(Arg + 12, Level)) {
        std::fprintf(stderr, "--log-level: unknown level '%s'\n", Arg + 12);
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strcmp(Arg, "--log-json") == 0) {
      LogJson = true;
    } else if (std::strncmp(Arg, "--trace-slow-ms=", 16) == 0) {
      TraceSlowMs = std::atof(Arg + 16);
      if (TraceSlowMs < 0) {
        std::fprintf(stderr, "--trace-slow-ms needs a threshold >= 0\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strncmp(Arg, "--trace-dir=", 12) == 0) {
      TraceDir = Arg + 12;
      if (TraceDir.empty()) {
        std::fprintf(stderr, "--trace-dir needs a path\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strncmp(Arg, "--trace-ring=", 13) == 0) {
      int N = std::atoi(Arg + 13);
      if (N <= 0) {
        std::fprintf(stderr, "--trace-ring needs a positive count\n");
        usage(Argv[0]);
        return 2;
      }
      TraceRing = size_t(N);
    } else if (std::strncmp(Arg, "--profile-hz=", 13) == 0) {
      ProfileHz = std::atoi(Arg + 13);
      if (ProfileHz < 0 || ProfileHz > 1000) {
        std::fprintf(stderr, "--profile-hz needs a frequency in 0..1000\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strncmp(Arg, "--slo-target-ms=", 16) == 0) {
      double Ms = std::atof(Arg + 16);
      if (Ms <= 0) {
        std::fprintf(stderr, "--slo-target-ms needs a threshold > 0\n");
        usage(Argv[0]);
        return 2;
      }
      Opts.Slo.TargetUs = uint64_t(Ms * 1000.0);
    } else if (std::strncmp(Arg, "--slo-objective=", 16) == 0) {
      double Pct = std::atof(Arg + 16);
      if (Pct <= 0 || Pct >= 100) {
        std::fprintf(stderr,
                     "--slo-objective needs a percentage in (0, 100)\n");
        usage(Argv[0]);
        return 2;
      }
      Opts.Slo.ObjectivePct = Pct;
    } else if (std::strcmp(Arg, "--help") == 0) {
      usage(Argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg);
      usage(Argv[0]);
      return 2;
    }
  }
  if (!SawTransport)
    Stdio = true;

  obs::Logger Log(std::cerr, Level, LogJson);
  Opts.Log = &Log;
  std::unique_ptr<obs::SlowTraceRing> SlowTraces;
  if (TraceSlowMs >= 0) {
    SlowTraces = std::make_unique<obs::SlowTraceRing>(TraceDir, TraceRing);
    Opts.SlowTraces = SlowTraces.get();
    Opts.TraceSlowMs = TraceSlowMs;
  }

  if (ProfileHz > 0) {
    prof::Profiler::Options PO;
    PO.SampleHz = unsigned(ProfileHz);
    prof::profiler().start(PO);
  }

  ServerEngine Engine(Opts);

  UnixSocketServer Socket(Engine, SocketPath);
  if (!SocketPath.empty()) {
    std::string Error;
    if (!Socket.start(Error)) {
      std::fprintf(stderr, "seminal_serverd: %s\n", Error.c_str());
      return 2;
    }
    std::fprintf(stderr, "seminal_serverd: listening on %s (%u shards)\n",
                 SocketPath.c_str(), Engine.shards());
  }

  MetricsHttpServer Metrics(Engine, uint16_t(MetricsPort < 0 ? 0 : MetricsPort));
  if (MetricsPort >= 0) {
    std::string Error;
    if (!Metrics.start(Error)) {
      std::fprintf(stderr, "seminal_serverd: metrics: %s\n", Error.c_str());
      return 2;
    }
    std::fprintf(stderr, "seminal_serverd: metrics on http://127.0.0.1:%u/metrics\n",
                 unsigned(Metrics.port()));
  }

  if (Stdio) {
    serveStdio(Engine, std::cin, std::cout);
  } else {
    // Socket-only mode: park until a client sends "shutdown".
    while (!Engine.shutdownRequested())
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  if (MetricsPort >= 0)
    Metrics.stop();
  if (!SocketPath.empty())
    Socket.stop();
  Engine.drain();
  if (ProfileHz > 0)
    prof::profiler().stop();
  return 0;
}
