//===- seminal_serverd.cpp - Search-as-a-service daemon ---------------------==//
//
// The long-lived counterpart of seminal_cli (DESIGN.md section 13): one
// process holds every editor session's warm search state -- prefix
// checkpoints, interned-AST verdict caches, conventional-error memos --
// so an edit-resubmit only pays for the suffix that changed. Requests
// are one JSON object per line on stdin (--stdio, the default) or on a
// Unix domain socket (--socket=PATH); both transports can run at once.
//
// Sessions are sharded across worker threads by name, so concurrent
// clients never contend: each session's requests run FIFO on one
// worker, and suggestions are bit-identical to a cold seminal_cli run
// of the same source.
//
// Usage:
//   seminal_serverd [--stdio] [--socket=PATH] [--threads=N]
//                   [--evict-bytes=N] [--max-suggestions=N]
//
// Try it (pipe a request line into --stdio mode):
//   printf '%s\n' '{"method":"check","id":1,"source":"..."}' | seminal_serverd
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>

using namespace seminal;
using namespace seminal::server;

namespace {

void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--stdio] [--socket=PATH] [--threads=N]\n"
               "          [--evict-bytes=N] [--max-suggestions=N]\n"
               "  --stdio            serve JSONL requests on stdin/stdout\n"
               "                     (default when --socket is absent)\n"
               "  --socket=PATH      also accept connections on a Unix\n"
               "                     domain socket at PATH\n"
               "  --threads=N        worker (= session shard) count;\n"
               "                     default: hardware concurrency\n"
               "  --evict-bytes=N    per-session arena watermark; crossing\n"
               "                     it drops that session's warm state\n"
               "                     (default 64 MiB)\n"
               "  --max-suggestions=N\n"
               "                     default suggestion cap per check\n"
               "                     (requests may override)\n",
               Prog);
}

} // namespace

int main(int Argc, char **Argv) {
  ServerOptions Opts;
  std::string SocketPath;
  bool Stdio = false;
  bool SawTransport = false;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--stdio") == 0) {
      Stdio = true;
      SawTransport = true;
    } else if (std::strncmp(Arg, "--socket=", 9) == 0) {
      SocketPath = Arg + 9;
      SawTransport = true;
      if (SocketPath.empty()) {
        std::fprintf(stderr, "--socket needs a path\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strncmp(Arg, "--threads=", 10) == 0) {
      int N = std::atoi(Arg + 10);
      if (N <= 0) {
        std::fprintf(stderr, "--threads needs a positive count\n");
        usage(Argv[0]);
        return 2;
      }
      Opts.Threads = unsigned(N);
    } else if (std::strncmp(Arg, "--evict-bytes=", 14) == 0) {
      long long N = std::atoll(Arg + 14);
      if (N <= 0) {
        std::fprintf(stderr, "--evict-bytes needs a positive byte count\n");
        usage(Argv[0]);
        return 2;
      }
      Opts.Session.ArenaEvictBytes = uint64_t(N);
    } else if (std::strncmp(Arg, "--max-suggestions=", 18) == 0) {
      int N = std::atoi(Arg + 18);
      if (N <= 0) {
        std::fprintf(stderr, "--max-suggestions needs a positive count\n");
        usage(Argv[0]);
        return 2;
      }
      Opts.Session.Base.MaxSuggestions = size_t(N);
    } else if (std::strcmp(Arg, "--help") == 0) {
      usage(Argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg);
      usage(Argv[0]);
      return 2;
    }
  }
  if (!SawTransport)
    Stdio = true;

  ServerEngine Engine(Opts);

  UnixSocketServer Socket(Engine, SocketPath);
  if (!SocketPath.empty()) {
    std::string Error;
    if (!Socket.start(Error)) {
      std::fprintf(stderr, "seminal_serverd: %s\n", Error.c_str());
      return 2;
    }
    std::fprintf(stderr, "seminal_serverd: listening on %s (%u shards)\n",
                 SocketPath.c_str(), Engine.shards());
  }

  if (Stdio) {
    serveStdio(Engine, std::cin, std::cout);
  } else {
    // Socket-only mode: park until a client sends "shutdown".
    while (!Engine.shutdownRequested())
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  if (!SocketPath.empty())
    Socket.stop();
  Engine.drain();
  return 0;
}
