//===- custom_changes.cpp - Extending the change catalog ------------------==//
//
// The paper twice proposes an "open framework where programmers could
// add possible changes ... especially since it does not threaten
// compiler correctness" (Sections 2.2 and 6) -- particularly useful for
// embedded DSLs that want error messages in their own vocabulary. This
// example registers two domain-specific changes and shows them winning
// on programs the built-in Figure 3 catalog cannot fix.
//
//===----------------------------------------------------------------------===//

#include "core/ChangeRegistry.h"
#include "core/Seminal.h"

#include <cstdio>

using namespace seminal;
using namespace seminal::caml;

namespace {

/// Change 1: wrap int-valued expressions in string_of_int.
void stringConversion(const Expr &Node, std::vector<CandidateChange> &Out) {
  if (Node.kind() != Expr::Kind::Var && Node.kind() != Expr::Kind::BinOp &&
      Node.kind() != Expr::Kind::App)
    return;
  CandidateChange C;
  std::vector<ExprPtr> Args;
  Args.push_back(Node.clone());
  C.Replacement = makeApp(makeVar("string_of_int"), std::move(Args));
  C.Description = "convert the integer to a string";
  Out.push_back(std::move(C));
}

/// Change 2: a project-local convention -- lists of pairs are built with
/// List.combine, and students keep passing two lists to functions that
/// want the combined form. Suggest combining.
void combineLists(const Expr &Node, std::vector<CandidateChange> &Out) {
  if (Node.kind() != Expr::Kind::Tuple || Node.numChildren() != 2)
    return;
  CandidateChange C;
  std::vector<ExprPtr> Args;
  Args.push_back(Node.child(0)->clone());
  Args.push_back(Node.child(1)->clone());
  C.Replacement = makeApp(makeVar("List.combine"), std::move(Args));
  C.Description = "combine the two lists into a list of pairs";
  Out.push_back(std::move(C));
}

void demo(const char *Title, const char *Source,
          const SeminalOptions &Plain, const SeminalOptions &Extended) {
  std::printf("================================================\n");
  std::printf("%s\n", Title);
  std::printf("================================================\n%s\n",
              Source);
  SeminalReport RPlain = runSeminalOnSource(Source, Plain);
  SeminalReport RExt = runSeminalOnSource(Source, Extended);
  std::printf("--- built-in catalog only ---\n%s\n\n",
              RPlain.bestMessage().c_str());
  std::printf("--- with registered custom changes ---\n%s\n\n",
              RExt.bestMessage().c_str());
}

} // namespace

int main() {
  ChangeRegistry Registry;
  Registry.add("string-conversion", stringConversion);
  Registry.add("combine-lists", combineLists);
  std::printf("registered %zu custom change generator(s)\n\n",
              Registry.size());

  SeminalOptions Plain;
  SeminalOptions Extended;
  Extended.Search.Enum.Extra = &Registry;

  demo("An int where a string is needed",
       "let report n = \"count: \" ^ (n * 2)\n", Plain, Extended);

  demo("Two lists where a list of pairs is needed",
       "let total pairs = List.fold_left (fun acc (a, b) -> acc + a * b) "
       "0 pairs\n"
       "let prices = [3; 4]\n"
       "let amounts = [10; 20]\n"
       "let bill = total (prices, amounts)\n",
       Plain, Extended);
  return 0;
}
