//===- cpp_templates.cpp - The C++ template-function prototype ------------==//
//
// Uses the mini-C++ half of the library (Section 4): builds the STL
// client of the paper's Figure 10 with the builder API, prints the
// gcc-flavored instantiation-chain error wall (Figure 11), runs the
// search, and applies the winning fix.
//
//===----------------------------------------------------------------------===//

#include "minicpp/CcSearch.h"
#include "minicpp/CcStl.h"

#include <cstdio>

using namespace seminal;
using namespace seminal::cpp;

int main() {
  CcProgram Prog;
  addMiniStl(Prog);

  // void myFun(vector<long>& inv, vector<long>& outv) {
  //   transform(inv.begin(), inv.end(), outv.begin(),
  //             compose1(bind1st(multiplies<long>(), 5), labs));
  // }
  auto MyFun = std::make_unique<CcFuncDecl>();
  MyFun->Name = "myFun";
  MyFun->Params = {{"inv", ccVector(ccLong())},
                   {"outv", ccVector(ccLong())}};
  MyFun->RetType = ccVoid();

  std::vector<CcExprPtr> BindArgs;
  BindArgs.push_back(ccConstruct("multiplies", {ccLong()}, {}));
  BindArgs.push_back(ccIntLit(5));

  std::vector<CcExprPtr> ComposeArgs;
  ComposeArgs.push_back(ccCallNamed("bind1st", std::move(BindArgs)));
  ComposeArgs.push_back(ccVar("labs")); // should be ptr_fun(labs)

  std::vector<CcExprPtr> TransformArgs;
  TransformArgs.push_back(ccMethodCall(ccVar("inv"), "begin", {}));
  TransformArgs.push_back(ccMethodCall(ccVar("inv"), "end", {}));
  TransformArgs.push_back(ccMethodCall(ccVar("outv"), "begin", {}));
  TransformArgs.push_back(ccCallNamed("compose1", std::move(ComposeArgs)));
  MyFun->Body.push_back(
      ccExprStmt(ccCallNamed("transform", std::move(TransformArgs))));
  Prog.Funcs.push_back(std::move(MyFun));

  std::printf("The client function:\n%s\n\n",
              printFunc(*Prog.findFunc("myFun")).c_str());

  CcReport Report = runCppSeminal(Prog);
  std::printf("The compiler's message (Figure 11 in the paper):\n%s\n\n",
              Report.Baseline.str().c_str());
  std::printf("The search-based message:\n%s\n\n",
              Report.bestMessage().c_str());

  // Apply the winning fix and recompile.
  if (!Report.Suggestions.empty() &&
      Report.Suggestions.front().After == "ptr_fun(labs)") {
    CcFuncDecl *F = Prog.findFunc("myFun");
    CcExpr *Compose = F->Body[0].E->child(4);
    std::vector<CcExprPtr> Wrapped;
    Wrapped.push_back(std::move(Compose->Children[2]));
    Compose->Children[2] = ccCallNamed("ptr_fun", std::move(Wrapped));
    CcCheckResult After = checkProgram(Prog);
    std::printf("After applying the suggestion: %s\n",
                After.ok() ? "the program type-checks."
                           : After.str().c_str());
  }
  return 0;
}
