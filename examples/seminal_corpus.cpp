//===- seminal_corpus.cpp - Corpus sweep with outcome telemetry ------------==//
//
// Runs the full evaluation pipeline (corpus generation -> three message
// producers -> judge -> Figure-5 bucketing) and emits outcome telemetry:
// one RunReport JSON object per analyzed file, plus the aggregate
// quality snapshot that scripts/compare_telemetry.py diffs against
// bench/BASELINE_telemetry.json in CI.
//
// Stream discipline: stdout carries exactly one JSON document (the
// aggregate snapshot); progress and the human-readable summary go to
// stderr. `seminal_corpus --scale=0.5 > snapshot.json` is always valid.
//
// Usage:
//   seminal_corpus [--scale=F] [--seed=N] [--telemetry=DIR] [--no-triage]
//
//===----------------------------------------------------------------------===//

#include "eval/Runner.h"
#include "obs/Aggregate.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

using namespace seminal;

namespace {

void usage(const char *Prog) {
  std::fprintf(
      stderr,
      "usage: %s [--scale=F] [--seed=N] [--telemetry=DIR] [--no-triage]\n"
      "  --scale=F       corpus size multiplier (default 1.0; CI uses 0.5)\n"
      "  --seed=N        corpus generation seed (default 20070611)\n"
      "  --telemetry=DIR write DIR/telemetry.jsonl (one RunReport per\n"
      "                  analyzed file) and DIR/telemetry_snapshot.json\n"
      "                  (the aggregate also printed on stdout); DIR is\n"
      "                  created if missing\n"
      "  --no-triage     degrade the main configuration by disabling\n"
      "                  triage -- the synthetic quality regression the\n"
      "                  compare_telemetry.py CI gate is tested against\n"
      "\n"
      "stdout: the aggregate quality snapshot as one JSON document\n"
      "        (\"bench\": \"telemetry\"); everything else on stderr.\n",
      Prog);
}

} // namespace

int main(int Argc, char **Argv) {
  CorpusOptions CorpusOpts;
  std::string TelemetryDir;
  bool NoTriage = false;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--scale=", 8) == 0) {
      CorpusOpts.Scale = std::atof(Arg + 8);
      if (CorpusOpts.Scale <= 0) {
        std::fprintf(stderr, "--scale needs a positive factor\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strncmp(Arg, "--seed=", 7) == 0) {
      CorpusOpts.Seed = std::strtoull(Arg + 7, nullptr, 10);
    } else if (std::strncmp(Arg, "--telemetry=", 12) == 0) {
      TelemetryDir = Arg + 12;
      if (TelemetryDir.empty()) {
        std::fprintf(stderr, "--telemetry needs a directory path\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strcmp(Arg, "--no-triage") == 0) {
      NoTriage = true;
    } else if (std::strcmp(Arg, "--help") == 0) {
      usage(Argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg);
      usage(Argv[0]);
      return 2;
    }
  }

  Corpus TheCorpus = generateCorpus(CorpusOpts);
  std::fprintf(stderr,
               "corpus: %zu analyzed files (%u collected), scale %.2f, "
               "seed %llu%s\n",
               TheCorpus.Analyzed.size(), TheCorpus.TotalCollected,
               CorpusOpts.Scale, (unsigned long long)CorpusOpts.Seed,
               NoTriage ? ", TRIAGE DISABLED" : "");

  std::ofstream Jsonl;
  if (!TelemetryDir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(TelemetryDir, EC);
    if (EC) {
      std::fprintf(stderr, "cannot create '%s': %s\n", TelemetryDir.c_str(),
                   EC.message().c_str());
      return 2;
    }
    Jsonl.open(TelemetryDir + "/telemetry.jsonl");
    if (!Jsonl) {
      std::fprintf(stderr, "cannot write %s/telemetry.jsonl\n",
                   TelemetryDir.c_str());
      return 2;
    }
  }

  EvalOptions EvalOpts;
  EvalOpts.BuildReports = true;
  EvalOpts.DisableTriage = NoTriage;

  obs::TelemetryAggregate Agg;
  size_t Done = 0;
  for (const CorpusFile &File : TheCorpus.Analyzed) {
    FileOutcome Out = evaluateFile(File, EvalOpts);
    Agg.add(Out.Report);
    if (Jsonl.is_open()) {
      Out.Report.writeJson(Jsonl);
      Jsonl << "\n";
    }
    if (++Done % 50 == 0)
      std::fprintf(stderr, "  ... %zu/%zu files\n", Done,
                   TheCorpus.Analyzed.size());
  }

  obs::SnapshotInfo Info;
  Info.Scale = CorpusOpts.Scale;
  Info.Seed = CorpusOpts.Seed;
  Info.Config = NoTriage ? "no-triage" : "full";

  std::ostringstream Snapshot;
  Agg.writeSnapshotJson(Snapshot, Info);

  if (!TelemetryDir.empty()) {
    std::ofstream Out(TelemetryDir + "/telemetry_snapshot.json");
    if (!Out) {
      std::fprintf(stderr, "cannot write %s/telemetry_snapshot.json\n",
                   TelemetryDir.c_str());
      return 2;
    }
    Out << Snapshot.str();
    std::fprintf(stderr, "wrote %s/telemetry.jsonl and telemetry_snapshot"
                 ".json\n", TelemetryDir.c_str());
  }

  std::fputs(Snapshot.str().c_str(), stdout);
  return 0;
}
