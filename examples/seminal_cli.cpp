//===- seminal_cli.cpp - Command-line front end ----------------------------==//
//
// A small compiler-like driver: check a mini-Caml file and, when it is
// ill-typed, print the conventional message followed by the ranked
// search-based suggestions. The shape a course staff would actually
// deploy (the paper's data collection wrapped the compiler the same
// way).
//
// Usage:
//   seminal_cli [--no-triage] [--max-suggestions=N] [--quiet]
//               [--trace=FILE] [--metrics] [--slice] [--slice-guided]
//               FILE.ml
//   seminal_cli --expr 'let x = 1 + "two"'
//
//===----------------------------------------------------------------------===//

#include "core/Seminal.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace seminal;

namespace {

void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--no-triage] [--max-suggestions=N] [--quiet] "
               "[--trace=FILE] [--metrics] [--slice] [--slice-guided] "
               "FILE.ml\n"
               "       %s --expr 'PROGRAM TEXT'\n"
               "  --trace=FILE   write a span trace of the run; FILE.json\n"
               "                 is Chrome trace_event format (load it in\n"
               "                 Perfetto / chrome://tracing), FILE.jsonl\n"
               "                 is one event object per line\n"
               "  --metrics      print per-layer latency/shape histograms\n"
               "  --slice        compute and print the provenance error\n"
               "                 slice (the program points that jointly\n"
               "                 cause the failure); also boosts in-slice\n"
               "                 suggestions in the ranking\n"
               "  --slice-guided like --slice, and additionally skip\n"
               "                 oracle calls the slice proves futile;\n"
               "                 suggestions are identical, just cheaper\n",
               Prog, Prog);
}

bool endsWith(const std::string &S, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

} // namespace

int main(int Argc, char **Argv) {
  SeminalOptions Opts;
  std::string Source;
  std::string TracePath;
  bool HaveSource = false;
  bool Quiet = false;
  bool WantMetrics = false;
  bool WantSlice = false;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--no-triage") == 0) {
      Opts.Search.EnableTriage = false;
    } else if (std::strncmp(Arg, "--max-suggestions=", 18) == 0) {
      int N = std::atoi(Arg + 18);
      if (N <= 0) {
        std::fprintf(stderr, "--max-suggestions needs a positive count\n");
        usage(Argv[0]);
        return 2;
      }
      Opts.MaxSuggestions = size_t(N);
    } else if (std::strcmp(Arg, "--quiet") == 0) {
      Quiet = true;
    } else if (std::strncmp(Arg, "--trace=", 8) == 0) {
      TracePath = Arg + 8;
      if (TracePath.empty()) {
        std::fprintf(stderr, "--trace needs a file path\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strcmp(Arg, "--metrics") == 0) {
      WantMetrics = true;
    } else if (std::strcmp(Arg, "--slice") == 0) {
      WantSlice = true;
      Opts.Search.ComputeSlice = true;
    } else if (std::strcmp(Arg, "--slice-guided") == 0) {
      WantSlice = true;
      Opts.Search.SliceGuided = true;
    } else if (std::strcmp(Arg, "--expr") == 0 && I + 1 < Argc) {
      Source = Argv[++I];
      HaveSource = true;
    } else if (std::strcmp(Arg, "--help") == 0) {
      usage(Argv[0]);
      return 0;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", Arg);
      usage(Argv[0]);
      return 2;
    } else {
      std::ifstream In(Arg);
      if (!In) {
        std::fprintf(stderr, "cannot open '%s'\n", Arg);
        return 2;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Source = Buf.str();
      HaveSource = true;
    }
  }
  if (!HaveSource) {
    usage(Argv[0]);
    return 2;
  }

  // Observability sinks outlive the run; they are attached by pointer and
  // exported after the report is in hand. Suggestions are byte-identical
  // with and without them -- tracing only observes.
  TraceSink Sink;
  Metrics Metric;
  if (!TracePath.empty())
    Opts.Search.Trace = &Sink;
  if (WantMetrics)
    Opts.Search.Metric = &Metric;

  SeminalReport Report = runSeminalOnSource(Source, Opts);

  if (!TracePath.empty() && !Report.SyntaxError) {
    std::ofstream Out(TracePath);
    if (!Out) {
      std::fprintf(stderr, "cannot write trace to '%s'\n", TracePath.c_str());
      return 2;
    }
    if (endsWith(TracePath, ".jsonl"))
      Sink.writeJsonl(Out);
    else
      Sink.writeChromeTrace(Out);
    if (!Quiet)
      std::fprintf(stderr, "wrote %zu trace events to %s\n",
                   Sink.eventCount(), TracePath.c_str());
  }

  int Exit = 1;
  if (Report.SyntaxError) {
    std::printf("%s\n", Report.bestMessage().c_str());
    return 1;
  }
  if (Report.InputTypechecks) {
    if (!Quiet)
      std::printf("No type errors.\n");
    Exit = 0;
  } else {
    if (!Quiet) {
      std::printf("Type-checker:\n  %s\n\n",
                  Report.conventionalMessage().c_str());
      if (WantSlice) {
        if (Report.Slice)
          std::printf("%s\n", Report.Slice->render().c_str());
        else
          std::printf("no error slice (failure not sliceable)\n\n");
      }
      if (Report.SlicePrunedCalls)
        std::printf("Suggestions (best first, %zu oracle calls, %zu "
                    "pruned by the slice):\n\n",
                    Report.OracleCalls, Report.SlicePrunedCalls);
      else
        std::printf("Suggestions (best first, %zu oracle calls):\n\n",
                    Report.OracleCalls);
    }
    if (Report.Suggestions.empty()) {
      std::printf("%s\n", Report.bestMessage().c_str());
    } else {
      for (size_t I = 0; I < Report.Suggestions.size(); ++I) {
        std::printf("[%zu] %s\n\n", I + 1,
                    renderSuggestion(Report.Suggestions[I]).c_str());
        if (Quiet)
          break;
      }
    }
  }

  if (!Quiet && Report.Trace)
    std::printf("%s", Report.Trace->render().c_str());
  if (WantMetrics && !Metric.empty())
    std::printf("%s", Metric.render().c_str());
  return Exit;
}
