//===- seminal_cli.cpp - Command-line front end ----------------------------==//
//
// A small compiler-like driver: check a mini-Caml file and, when it is
// ill-typed, print the conventional message followed by the ranked
// search-based suggestions. The shape a course staff would actually
// deploy (the paper's data collection wrapped the compiler the same
// way).
//
// Stream discipline: stdout carries the result -- human-readable
// messages normally, exactly one RunReport JSON document under --json --
// and nothing else; every diagnostic, progress note and observability
// rendering (--metrics, trace summaries) goes to stderr. A script can
// always pipe stdout without scrubbing.
//
// Usage:
//   seminal_cli [--no-triage] [--max-suggestions=N] [--quiet] [--json]
//               [--trace=FILE] [--telemetry=FILE] [--explore=FILE.html]
//               [--metrics] [--slice] [--slice-guided] FILE.ml
//   seminal_cli --expr 'let x = 1 + "two"'
//
//===----------------------------------------------------------------------===//

#include "core/Seminal.h"
#include "minicaml/Hash.h"
#include "obs/Explorer.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace seminal;

namespace {

void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--no-triage] [--max-suggestions=N] [--quiet] "
               "[--json] [--trace=FILE] [--telemetry=FILE] "
               "[--explore=FILE.html] [--metrics] [--slice] "
               "[--slice-guided] FILE.ml\n"
               "       %s --expr 'PROGRAM TEXT'\n"
               "  --json         print the run's RunReport as one JSON\n"
               "                 document on stdout instead of the\n"
               "                 human-readable messages (schema in\n"
               "                 DESIGN.md section 10)\n"
               "  --trace=FILE   write a span trace of the run; FILE.json\n"
               "                 is Chrome trace_event format (load it in\n"
               "                 Perfetto / chrome://tracing), FILE.jsonl\n"
               "                 is one event object per line\n"
               "  --telemetry=FILE\n"
               "                 write the run's RunReport JSON to FILE\n"
               "  --explore=FILE.html\n"
               "                 write a self-contained search-explorer\n"
               "                 page (search tree, oracle-call timeline,\n"
               "                 slice overlay, ranked suggestions); opens\n"
               "                 offline in any browser\n"
               "  --metrics      print per-layer latency/shape histograms\n"
               "                 (stderr)\n"
               "  --slice        compute and print the provenance error\n"
               "                 slice (the program points that jointly\n"
               "                 cause the failure); also boosts in-slice\n"
               "                 suggestions in the ranking\n"
               "  --slice-guided like --slice, and additionally skip\n"
               "                 oracle calls the slice proves futile;\n"
               "                 suggestions are identical, just cheaper\n",
               Prog, Prog);
}

bool endsWith(const std::string &S, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

} // namespace

int main(int Argc, char **Argv) {
  SeminalOptions Opts;
  std::string Source;
  std::string SourceName = "<expr>";
  std::string TracePath;
  std::string TelemetryPath;
  std::string ExplorePath;
  bool HaveSource = false;
  bool Quiet = false;
  bool Json = false;
  bool WantMetrics = false;
  bool WantSlice = false;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--no-triage") == 0) {
      Opts.Search.EnableTriage = false;
    } else if (std::strncmp(Arg, "--max-suggestions=", 18) == 0) {
      int N = std::atoi(Arg + 18);
      if (N <= 0) {
        std::fprintf(stderr, "--max-suggestions needs a positive count\n");
        usage(Argv[0]);
        return 2;
      }
      Opts.MaxSuggestions = size_t(N);
    } else if (std::strcmp(Arg, "--quiet") == 0) {
      Quiet = true;
    } else if (std::strcmp(Arg, "--json") == 0) {
      Json = true;
    } else if (std::strncmp(Arg, "--trace=", 8) == 0) {
      TracePath = Arg + 8;
      if (TracePath.empty()) {
        std::fprintf(stderr, "--trace needs a file path\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strncmp(Arg, "--telemetry=", 12) == 0) {
      TelemetryPath = Arg + 12;
      if (TelemetryPath.empty()) {
        std::fprintf(stderr, "--telemetry needs a file path\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strncmp(Arg, "--explore=", 10) == 0) {
      ExplorePath = Arg + 10;
      if (ExplorePath.empty()) {
        std::fprintf(stderr, "--explore needs a file path\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strcmp(Arg, "--metrics") == 0) {
      WantMetrics = true;
    } else if (std::strcmp(Arg, "--slice") == 0) {
      WantSlice = true;
      Opts.Search.ComputeSlice = true;
    } else if (std::strcmp(Arg, "--slice-guided") == 0) {
      WantSlice = true;
      Opts.Search.SliceGuided = true;
    } else if (std::strcmp(Arg, "--expr") == 0 && I + 1 < Argc) {
      Source = Argv[++I];
      HaveSource = true;
    } else if (std::strcmp(Arg, "--help") == 0) {
      usage(Argv[0]);
      return 0;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", Arg);
      usage(Argv[0]);
      return 2;
    } else {
      std::ifstream In(Arg);
      if (!In) {
        std::fprintf(stderr, "cannot open '%s'\n", Arg);
        return 2;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Source = Buf.str();
      SourceName = Arg;
      HaveSource = true;
    }
  }
  if (!HaveSource) {
    usage(Argv[0]);
    return 2;
  }

  // Observability sinks outlive the run; they are attached by pointer and
  // exported after the report is in hand. Suggestions are byte-identical
  // with and without them -- they only observe.
  TraceSink Sink;
  Metrics Metric;
  obs::TelemetrySink Telemetry;
  bool WantReport = Json || !TelemetryPath.empty() || !ExplorePath.empty();
  if (!TracePath.empty() || !ExplorePath.empty())
    Opts.Search.Trace = &Sink;
  if (WantMetrics)
    Opts.Search.Metric = &Metric;
  if (WantReport)
    Opts.Search.Telemetry = &Telemetry;

  SeminalReport Report = runSeminalOnSource(Source, Opts);

  if (!TracePath.empty() && !Report.SyntaxError) {
    std::ofstream Out(TracePath);
    if (!Out) {
      std::fprintf(stderr, "cannot write trace to '%s'\n", TracePath.c_str());
      return 2;
    }
    if (endsWith(TracePath, ".jsonl"))
      Sink.writeJsonl(Out);
    else
      Sink.writeChromeTrace(Out);
    if (!Quiet)
      std::fprintf(stderr, "wrote %zu trace events to %s\n",
                   Sink.eventCount(), TracePath.c_str());
  }

  obs::RunReport Run;
  if (WantReport) {
    Run.ProgramId = SourceName;
    if (!Report.SyntaxError) {
      caml::ParseResult PR = caml::parseProgram(Source);
      if (PR.ok())
        Run.SourceHash = caml::hashProgram(*PR.Prog);
    }
    fillRunReport(Run, Report, &Telemetry);

    if (!TelemetryPath.empty()) {
      std::ofstream Out(TelemetryPath);
      if (!Out) {
        std::fprintf(stderr, "cannot write telemetry to '%s'\n",
                     TelemetryPath.c_str());
        return 2;
      }
      Run.writeJson(Out, /*Pretty=*/true);
      Out << "\n";
      if (!Quiet)
        std::fprintf(stderr, "wrote run report to %s\n",
                     TelemetryPath.c_str());
    }
    if (!ExplorePath.empty()) {
      std::ofstream Out(ExplorePath);
      if (!Out) {
        std::fprintf(stderr, "cannot write explorer to '%s'\n",
                     ExplorePath.c_str());
        return 2;
      }
      obs::ExplorerOptions EO;
      EO.Title = "SEMINAL search explorer: " + SourceName;
      obs::writeExplorerHtml(Out, Sink.snapshot(), Run, Source, EO);
      if (!Quiet)
        std::fprintf(stderr, "wrote search explorer to %s\n",
                     ExplorePath.c_str());
    }
  }

  int Exit;
  if (Report.SyntaxError)
    Exit = 1;
  else
    Exit = Report.InputTypechecks ? 0 : 1;

  if (Json) {
    // Machine mode: stdout is exactly one JSON document.
    std::ostringstream OS;
    Run.writeJson(OS, /*Pretty=*/true);
    std::printf("%s\n", OS.str().c_str());
  } else if (Report.SyntaxError) {
    std::printf("%s\n", Report.bestMessage().c_str());
  } else if (Report.InputTypechecks) {
    if (!Quiet)
      std::printf("No type errors.\n");
  } else {
    if (!Quiet) {
      std::printf("Type-checker:\n  %s\n\n",
                  Report.conventionalMessage().c_str());
      if (WantSlice) {
        if (Report.Slice)
          std::printf("%s\n", Report.Slice->render().c_str());
        else
          std::printf("no error slice (failure not sliceable)\n\n");
      }
      if (Report.SlicePrunedCalls)
        std::printf("Suggestions (best first, %zu oracle calls, %zu "
                    "pruned by the slice):\n\n",
                    Report.OracleCalls, Report.SlicePrunedCalls);
      else
        std::printf("Suggestions (best first, %zu oracle calls):\n\n",
                    Report.OracleCalls);
    }
    if (Report.Suggestions.empty()) {
      std::printf("%s\n", Report.bestMessage().c_str());
    } else {
      for (size_t I = 0; I < Report.Suggestions.size(); ++I) {
        std::printf("[%zu] %s\n\n", I + 1,
                    renderSuggestion(Report.Suggestions[I]).c_str());
        if (Quiet)
          break;
      }
    }
  }

  // Observability renderings are diagnostics, never results: stderr, so
  // they cannot interleave with --json output or piped messages.
  if (!Quiet && Report.Trace && Opts.Search.Trace)
    std::fprintf(stderr, "%s", Report.Trace->render().c_str());
  if (WantMetrics && !Metric.empty())
    std::fprintf(stderr, "%s", Metric.render().c_str());
  return Exit;
}
