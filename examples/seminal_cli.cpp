//===- seminal_cli.cpp - Command-line front end ----------------------------==//
//
// A small compiler-like driver: check a mini-Caml file and, when it is
// ill-typed, print the conventional message followed by the ranked
// search-based suggestions. The shape a course staff would actually
// deploy (the paper's data collection wrapped the compiler the same
// way).
//
// Stream discipline: stdout carries the result -- human-readable
// messages normally, exactly one RunReport JSON document under --json --
// and nothing else; every diagnostic, progress note and observability
// rendering (--metrics, trace summaries) goes to stderr. A script can
// always pipe stdout without scrubbing.
//
// Usage:
//   seminal_cli [--no-triage] [--max-suggestions=N] [--quiet] [--json]
//               [--trace=FILE] [--telemetry=FILE] [--explore=FILE.html]
//               [--metrics] [--slice] [--slice-guided] FILE.ml
//   seminal_cli --expr 'let x = 1 + "two"'
//   seminal_cli --connect=/tmp/seminal.sock --session=mybuf FILE.ml
//
// With --connect the check runs inside a seminal_serverd daemon instead
// of in-process: resubmitting after an edit reuses the session's warm
// search state, so the editor loop only pays for what changed. Output
// and exit codes match the local mode.
//
//===----------------------------------------------------------------------===//

#include "core/Seminal.h"
#include "minicaml/Hash.h"
#include "obs/Explorer.h"
#include "support/Json.h"
#include "support/Profiler.h"
#include "support/Trace.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace seminal;

namespace {

void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--no-triage] [--max-suggestions=N] [--quiet] "
               "[--json] [--trace=FILE] [--telemetry=FILE] "
               "[--explore=FILE.html] [--metrics] [--slice] "
               "[--slice-guided] FILE.ml\n"
               "       %s --expr 'PROGRAM TEXT'\n"
               "  --json         print the run's RunReport as one JSON\n"
               "                 document on stdout instead of the\n"
               "                 human-readable messages (schema in\n"
               "                 DESIGN.md section 10)\n"
               "  --trace=FILE   write a span trace of the run; FILE.json\n"
               "                 is Chrome trace_event format (load it in\n"
               "                 Perfetto / chrome://tracing), FILE.jsonl\n"
               "                 is one event object per line\n"
               "  --telemetry=FILE\n"
               "                 write the run's RunReport JSON to FILE\n"
               "  --explore=FILE.html\n"
               "                 write a self-contained search-explorer\n"
               "                 page (search tree, oracle-call timeline,\n"
               "                 slice overlay, ranked suggestions); opens\n"
               "                 offline in any browser\n"
               "  --metrics      print per-layer latency/shape histograms\n"
               "                 (stderr)\n"
               "  --slice        compute and print the provenance error\n"
               "                 slice (the program points that jointly\n"
               "                 cause the failure); also boosts in-slice\n"
               "                 suggestions in the ranking\n"
               "  --slice-guided like --slice, and additionally skip\n"
               "                 oracle calls the slice proves futile;\n"
               "                 suggestions are identical, just cheaper\n"
               "  --connect=PATH run the check in the seminal_serverd\n"
               "                 daemon listening on Unix socket PATH;\n"
               "                 repeated checks of the same --session\n"
               "                 reuse its warm search state\n"
               "  --session=NAME session name for --connect (default:\n"
               "                 \"default\")\n"
               "  --server-metrics[=FMT]\n"
               "                 with --connect: fetch the daemon's live\n"
               "                 metrics snapshot and print it on stdout\n"
               "                 (FMT: json, the default, or prometheus);\n"
               "                 no source file needed\n"
               "  --ops-snapshot=FILE\n"
               "                 with --explore: embed a saved metrics\n"
               "                 snapshot (JSON from --server-metrics or\n"
               "                 GET /metrics.json) as a live-ops panel\n"
               "  --profile=FILE one-shot profile of this run: sampled\n"
               "                 span stacks + exact per-phase CPU.\n"
               "                 FILE.json gets the snapshot object; any\n"
               "                 other name gets flamegraph.pl collapsed\n"
               "                 stacks (pipe into flamegraph.pl)\n"
               "  --profile-snapshot=FILE\n"
               "                 with --explore: embed a saved profile\n"
               "                 (JSON from --profile=FILE.json or\n"
               "                 /debug/profile?format=json) as a\n"
               "                 flamegraph panel\n",
               Prog, Prog);
}

bool endsWith(const std::string &S, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

// One round-trip on the daemon's Unix socket: send \p Request (one
// line), read one reply line into \p Reply. Returns false after
// printing the failure to stderr.
bool socketRoundTrip(const std::string &SocketPath, const std::string &Request,
                     std::string &Reply) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    std::perror("socket");
    return false;
  }
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", SocketPath.c_str());
    ::close(Fd);
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    std::fprintf(stderr, "cannot connect to '%s': %s\n", SocketPath.c_str(),
                 std::strerror(errno));
    ::close(Fd);
    return false;
  }
  size_t Off = 0;
  while (Off < Request.size()) {
    ssize_t N = ::send(Fd, Request.data() + Off, Request.size() - Off, 0);
    if (N <= 0) {
      std::fprintf(stderr, "send failed: %s\n", std::strerror(errno));
      ::close(Fd);
      return false;
    }
    Off += size_t(N);
  }
  Reply.clear();
  char Chunk[4096];
  while (Reply.find('\n') == std::string::npos) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N <= 0)
      break;
    Reply.append(Chunk, size_t(N));
  }
  ::close(Fd);
  size_t Eol = Reply.find('\n');
  if (Eol == std::string::npos) {
    std::fprintf(stderr, "daemon closed the connection without replying\n");
    return false;
  }
  Reply.resize(Eol);
  return true;
}

// --server-metrics: fetch the daemon's live ops snapshot and print it.
int fetchServerMetrics(const std::string &SocketPath,
                       const std::string &Format) {
  std::string Req = "{\"method\":\"metrics\",\"id\":1";
  if (Format == "prometheus")
    Req += ",\"format\":\"prometheus\"";
  Req += "}\n";
  std::string Reply;
  if (!socketRoundTrip(SocketPath, Req, Reply))
    return 2;
  json::ParseResult P = json::parse(Reply);
  if (!P.ok() || !P.Doc->isObject()) {
    std::fprintf(stderr, "unparseable daemon reply: %s\n", Reply.c_str());
    return 2;
  }
  if (!P.Doc->getBool("ok", false)) {
    std::fprintf(stderr, "daemon error: %s\n",
                 P.Doc->getString("error", "unknown").c_str());
    return 2;
  }
  if (Format == "prometheus") {
    std::printf("%s", P.Doc->getString("exposition").c_str());
    return 0;
  }
  // Print the snapshot verbatim (it is the response's final member), so
  // the output round-trips into --ops-snapshot without re-rendering.
  size_t Pos = Reply.find("\"metrics\":");
  if (!P.Doc->member("metrics") || Pos == std::string::npos) {
    std::fprintf(stderr, "daemon reply carried no metrics\n");
    return 2;
  }
  std::printf("%s\n",
              Reply.substr(Pos + 10, Reply.size() - Pos - 11).c_str());
  return 0;
}

// Client mode: ship one check request to a seminal_serverd daemon over
// its Unix socket and render the reply the way the local path would.
int runConnected(const std::string &SocketPath, const std::string &Session,
                 const std::string &Source, size_t MaxSuggestions, bool Quiet,
                 bool Json) {
  std::string Req = "{\"method\":\"check\",\"id\":1,\"session\":\"";
  Req += jsonEscape(Session);
  Req += "\",\"source\":\"";
  Req += jsonEscape(Source);
  Req += "\"";
  if (MaxSuggestions) {
    Req += ",\"max_suggestions\":";
    Req += std::to_string(MaxSuggestions);
  }
  if (Json)
    Req += ",\"report\":true";
  Req += "}\n";
  std::string Reply;
  if (!socketRoundTrip(SocketPath, Req, Reply))
    return 2;

  json::ParseResult P = json::parse(Reply);
  if (!P.ok() || !P.Doc->isObject()) {
    std::fprintf(stderr, "unparseable daemon reply: %s\n", Reply.c_str());
    return 2;
  }
  const json::Value &Doc = *P.Doc;
  if (!Doc.getBool("ok", false)) {
    std::fprintf(stderr, "daemon error: %s\n",
                 Doc.getString("error", "unknown").c_str());
    return 2;
  }

  std::string SyntaxError = Doc.getString("syntax_error");
  if (!SyntaxError.empty()) {
    std::printf("%s\n", SyntaxError.c_str());
    return 1;
  }
  if (Json) {
    // Machine mode mirrors the local --json contract: stdout is exactly
    // one JSON document (here the daemon's RunReport). The report is the
    // response's final member, spliced in as raw JSON text; print the
    // slice verbatim to avoid a lossy round-trip through doubles.
    size_t Pos = Reply.find("\"report\":");
    if (!Doc.member("report") || Pos == std::string::npos) {
      std::fprintf(stderr, "daemon reply carried no report\n");
      return 2;
    }
    std::printf("%s\n",
                Reply.substr(Pos + 9, Reply.size() - Pos - 10).c_str());
    return Doc.getBool("input_typechecks", false) ? 0 : 1;
  }
  if (Doc.getBool("input_typechecks", false)) {
    if (!Quiet)
      std::printf("No type errors.\n");
    return 0;
  }
  if (!Quiet) {
    std::printf("Type-checker:\n  %s\n\n",
                Doc.getString("conventional").c_str());
    int64_t Calls = Doc.getInt("oracle_calls", 0);
    std::printf("Suggestions (best first, %lld oracle calls):\n\n",
                static_cast<long long>(Calls));
  }
  const json::Value *Suggestions = Doc.member("suggestions");
  if (!Suggestions || !Suggestions->isArray() ||
      Suggestions->arrayValue().empty()) {
    std::printf("%s\n", Doc.getString("conventional").c_str());
  } else {
    size_t I = 0;
    for (const json::Value &S : Suggestions->arrayValue()) {
      std::printf("[%zu] %s\n\n", ++I, S.getString("message").c_str());
      if (Quiet)
        break;
    }
  }
  if (!Quiet) {
    if (const json::Value *Warm = Doc.member("warm"))
      std::fprintf(stderr,
                   "warm reuse: %lld prefix hits, %lld verdict reuses, "
                   "%lld seed adoptions, %lld conv memo hits\n",
                   static_cast<long long>(Warm->getInt("prefix_hits", 0)),
                   static_cast<long long>(Warm->getInt("verdict_reuses", 0)),
                   static_cast<long long>(Warm->getInt("seed_adoptions", 0)),
                   static_cast<long long>(Warm->getInt("conv_memo_hits", 0)));
  }
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  SeminalOptions Opts;
  std::string Source;
  std::string SourceName = "<expr>";
  std::string TracePath;
  std::string TelemetryPath;
  std::string ExplorePath;
  std::string ConnectPath;
  std::string SessionName = "default";
  std::string OpsSnapshotPath;
  std::string ProfilePath;
  std::string ProfileSnapshotPath;
  bool HaveSource = false;
  bool Quiet = false;
  bool Json = false;
  bool WantMetrics = false;
  bool WantSlice = false;
  bool WantServerMetrics = false;
  std::string ServerMetricsFormat = "json";

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--no-triage") == 0) {
      Opts.Search.EnableTriage = false;
    } else if (std::strncmp(Arg, "--max-suggestions=", 18) == 0) {
      int N = std::atoi(Arg + 18);
      if (N <= 0) {
        std::fprintf(stderr, "--max-suggestions needs a positive count\n");
        usage(Argv[0]);
        return 2;
      }
      Opts.MaxSuggestions = size_t(N);
    } else if (std::strcmp(Arg, "--quiet") == 0) {
      Quiet = true;
    } else if (std::strcmp(Arg, "--json") == 0) {
      Json = true;
    } else if (std::strncmp(Arg, "--trace=", 8) == 0) {
      TracePath = Arg + 8;
      if (TracePath.empty()) {
        std::fprintf(stderr, "--trace needs a file path\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strncmp(Arg, "--telemetry=", 12) == 0) {
      TelemetryPath = Arg + 12;
      if (TelemetryPath.empty()) {
        std::fprintf(stderr, "--telemetry needs a file path\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strncmp(Arg, "--explore=", 10) == 0) {
      ExplorePath = Arg + 10;
      if (ExplorePath.empty()) {
        std::fprintf(stderr, "--explore needs a file path\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strcmp(Arg, "--metrics") == 0) {
      WantMetrics = true;
    } else if (std::strcmp(Arg, "--slice") == 0) {
      WantSlice = true;
      Opts.Search.ComputeSlice = true;
    } else if (std::strcmp(Arg, "--slice-guided") == 0) {
      WantSlice = true;
      Opts.Search.SliceGuided = true;
    } else if (std::strncmp(Arg, "--connect=", 10) == 0) {
      ConnectPath = Arg + 10;
      if (ConnectPath.empty()) {
        std::fprintf(stderr, "--connect needs a socket path\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strncmp(Arg, "--session=", 10) == 0) {
      SessionName = Arg + 10;
      if (SessionName.empty()) {
        std::fprintf(stderr, "--session needs a name\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strcmp(Arg, "--server-metrics") == 0) {
      WantServerMetrics = true;
    } else if (std::strncmp(Arg, "--server-metrics=", 17) == 0) {
      WantServerMetrics = true;
      ServerMetricsFormat = Arg + 17;
      if (ServerMetricsFormat != "json" &&
          ServerMetricsFormat != "prometheus") {
        std::fprintf(stderr,
                     "--server-metrics: format must be json or prometheus\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strncmp(Arg, "--ops-snapshot=", 15) == 0) {
      OpsSnapshotPath = Arg + 15;
      if (OpsSnapshotPath.empty()) {
        std::fprintf(stderr, "--ops-snapshot needs a file path\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strncmp(Arg, "--profile=", 10) == 0) {
      ProfilePath = Arg + 10;
      if (ProfilePath.empty()) {
        std::fprintf(stderr, "--profile needs a file path\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strncmp(Arg, "--profile-snapshot=", 19) == 0) {
      ProfileSnapshotPath = Arg + 19;
      if (ProfileSnapshotPath.empty()) {
        std::fprintf(stderr, "--profile-snapshot needs a file path\n");
        usage(Argv[0]);
        return 2;
      }
    } else if (std::strcmp(Arg, "--expr") == 0 && I + 1 < Argc) {
      Source = Argv[++I];
      HaveSource = true;
    } else if (std::strcmp(Arg, "--help") == 0) {
      usage(Argv[0]);
      return 0;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", Arg);
      usage(Argv[0]);
      return 2;
    } else {
      std::ifstream In(Arg);
      if (!In) {
        std::fprintf(stderr, "cannot open '%s'\n", Arg);
        return 2;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Source = Buf.str();
      SourceName = Arg;
      HaveSource = true;
    }
  }
  if (WantServerMetrics) {
    if (ConnectPath.empty()) {
      std::fprintf(stderr, "--server-metrics needs --connect=PATH\n");
      usage(Argv[0]);
      return 2;
    }
    return fetchServerMetrics(ConnectPath, ServerMetricsFormat);
  }
  std::string OpsJson;
  if (!OpsSnapshotPath.empty()) {
    std::ifstream In(OpsSnapshotPath);
    if (!In) {
      std::fprintf(stderr, "cannot open '%s'\n", OpsSnapshotPath.c_str());
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    OpsJson = Buf.str();
    json::ParseResult P = json::parse(OpsJson);
    if (!P.ok()) {
      std::fprintf(stderr, "--ops-snapshot: '%s' is not valid JSON: %s\n",
                   OpsSnapshotPath.c_str(), P.Error.c_str());
      return 2;
    }
  }
  std::string ProfileJson;
  if (!ProfileSnapshotPath.empty()) {
    std::ifstream In(ProfileSnapshotPath);
    if (!In) {
      std::fprintf(stderr, "cannot open '%s'\n", ProfileSnapshotPath.c_str());
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    ProfileJson = Buf.str();
    json::ParseResult P = json::parse(ProfileJson);
    if (!P.ok()) {
      std::fprintf(stderr, "--profile-snapshot: '%s' is not valid JSON: %s\n",
                   ProfileSnapshotPath.c_str(), P.Error.c_str());
      return 2;
    }
  }
  if (!HaveSource) {
    usage(Argv[0]);
    return 2;
  }
  if (!ConnectPath.empty()) {
    if (!ProfilePath.empty()) {
      std::fprintf(stderr, "--profile profiles a local run; with --connect "
                           "use the daemon's profile verb or "
                           "/debug/profile instead\n");
      return 2;
    }
    return runConnected(ConnectPath, SessionName, Source, Opts.MaxSuggestions,
                        Quiet, Json);
  }

  // Observability sinks outlive the run; they are attached by pointer and
  // exported after the report is in hand. Suggestions are byte-identical
  // with and without them -- they only observe.
  TraceSink Sink;
  Metrics Metric;
  obs::TelemetrySink Telemetry;
  bool WantReport = Json || !TelemetryPath.empty() || !ExplorePath.empty();
  if (!TracePath.empty() || !ExplorePath.empty())
    Opts.Search.Trace = &Sink;
  if (WantMetrics)
    Opts.Search.Metric = &Metric;
  if (WantReport)
    Opts.Search.Telemetry = &Telemetry;

  // One-shot profiling: the profiler starts empty in this process, so
  // the cumulative snapshot after the run *is* the run's window.
  if (!ProfilePath.empty())
    prof::profiler().start(prof::Profiler::Options());

  uint64_t CpuStart = prof::threadCpuNs();
  auto WallStart = std::chrono::steady_clock::now();
  SeminalReport Report = runSeminalOnSource(Source, Opts);
  double WallSeconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - WallStart)
                           .count();
  uint64_t CpuNs = prof::threadCpuNs() - CpuStart;

  if (!ProfilePath.empty()) {
    prof::ProfileSnapshot Snap = prof::profiler().snapshot();
    prof::profiler().stop();
    std::ofstream Out(ProfilePath);
    if (!Out) {
      std::fprintf(stderr, "cannot write profile to '%s'\n",
                   ProfilePath.c_str());
      return 2;
    }
    if (endsWith(ProfilePath, ".json"))
      Snap.writeJson(Out);
    else
      Snap.writeCollapsed(Out);
    if (!Quiet)
      std::fprintf(stderr,
                   "wrote profile (%llu samples, %zu stacks) to %s\n",
                   static_cast<unsigned long long>(Snap.Samples),
                   Snap.Stacks.size(), ProfilePath.c_str());
  }

  if (!TracePath.empty() && !Report.SyntaxError) {
    std::ofstream Out(TracePath);
    if (!Out) {
      std::fprintf(stderr, "cannot write trace to '%s'\n", TracePath.c_str());
      return 2;
    }
    if (endsWith(TracePath, ".jsonl"))
      Sink.writeJsonl(Out);
    else
      Sink.writeChromeTrace(Out);
    if (!Quiet)
      std::fprintf(stderr, "wrote %zu trace events to %s\n",
                   Sink.eventCount(), TracePath.c_str());
  }

  obs::RunReport Run;
  if (WantReport) {
    Run.ProgramId = SourceName;
    if (!Report.SyntaxError) {
      caml::ParseResult PR = caml::parseProgram(Source);
      if (PR.ok())
        Run.SourceHash = caml::hashProgram(*PR.Prog);
    }
    fillRunReport(Run, Report, &Telemetry, WallSeconds);
    Run.Cost.CpuNs = CpuNs; // the measurer stamps the timing fields

    if (!TelemetryPath.empty()) {
      std::ofstream Out(TelemetryPath);
      if (!Out) {
        std::fprintf(stderr, "cannot write telemetry to '%s'\n",
                     TelemetryPath.c_str());
        return 2;
      }
      Run.writeJson(Out, /*Pretty=*/true);
      Out << "\n";
      if (!Quiet)
        std::fprintf(stderr, "wrote run report to %s\n",
                     TelemetryPath.c_str());
    }
    if (!ExplorePath.empty()) {
      std::ofstream Out(ExplorePath);
      if (!Out) {
        std::fprintf(stderr, "cannot write explorer to '%s'\n",
                     ExplorePath.c_str());
        return 2;
      }
      obs::ExplorerOptions EO;
      EO.Title = "SEMINAL search explorer: " + SourceName;
      EO.OpsJson = OpsJson;
      EO.ProfileJson = ProfileJson;
      obs::writeExplorerHtml(Out, Sink.snapshot(), Run, Source, EO);
      if (!Quiet)
        std::fprintf(stderr, "wrote search explorer to %s\n",
                     ExplorePath.c_str());
    }
  }

  int Exit;
  if (Report.SyntaxError)
    Exit = 1;
  else
    Exit = Report.InputTypechecks ? 0 : 1;

  if (Json) {
    // Machine mode: stdout is exactly one JSON document.
    std::ostringstream OS;
    Run.writeJson(OS, /*Pretty=*/true);
    std::printf("%s\n", OS.str().c_str());
  } else if (Report.SyntaxError) {
    std::printf("%s\n", Report.bestMessage().c_str());
  } else if (Report.InputTypechecks) {
    if (!Quiet)
      std::printf("No type errors.\n");
  } else {
    if (!Quiet) {
      std::printf("Type-checker:\n  %s\n\n",
                  Report.conventionalMessage().c_str());
      if (WantSlice) {
        if (Report.Slice)
          std::printf("%s\n", Report.Slice->render().c_str());
        else
          std::printf("no error slice (failure not sliceable)\n\n");
      }
      if (Report.SlicePrunedCalls)
        std::printf("Suggestions (best first, %zu oracle calls, %zu "
                    "pruned by the slice):\n\n",
                    Report.OracleCalls, Report.SlicePrunedCalls);
      else
        std::printf("Suggestions (best first, %zu oracle calls):\n\n",
                    Report.OracleCalls);
    }
    if (Report.Suggestions.empty()) {
      std::printf("%s\n", Report.bestMessage().c_str());
    } else {
      for (size_t I = 0; I < Report.Suggestions.size(); ++I) {
        std::printf("[%zu] %s\n\n", I + 1,
                    renderSuggestion(Report.Suggestions[I]).c_str());
        if (Quiet)
          break;
      }
    }
  }

  // Observability renderings are diagnostics, never results: stderr, so
  // they cannot interleave with --json output or piped messages.
  if (!Quiet && Report.Trace && Opts.Search.Trace)
    std::fprintf(stderr, "%s", Report.Trace->render().c_str());
  if (WantMetrics && !Metric.empty())
    std::fprintf(stderr, "%s", Metric.render().c_str());
  return Exit;
}
