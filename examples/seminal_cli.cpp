//===- seminal_cli.cpp - Command-line front end ----------------------------==//
//
// A small compiler-like driver: check a mini-Caml file and, when it is
// ill-typed, print the conventional message followed by the ranked
// search-based suggestions. The shape a course staff would actually
// deploy (the paper's data collection wrapped the compiler the same
// way).
//
// Usage:
//   seminal_cli [--no-triage] [--max-suggestions=N] [--quiet] FILE.ml
//   seminal_cli --expr 'let x = 1 + "two"'
//
//===----------------------------------------------------------------------===//

#include "core/Seminal.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace seminal;

namespace {

void usage(const char *Prog) {
  std::fprintf(stderr,
               "usage: %s [--no-triage] [--max-suggestions=N] [--quiet] "
               "FILE.ml\n"
               "       %s --expr 'PROGRAM TEXT'\n",
               Prog, Prog);
}

} // namespace

int main(int Argc, char **Argv) {
  SeminalOptions Opts;
  std::string Source;
  bool HaveSource = false;
  bool Quiet = false;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--no-triage") == 0) {
      Opts.Search.EnableTriage = false;
    } else if (std::strncmp(Arg, "--max-suggestions=", 18) == 0) {
      Opts.MaxSuggestions = size_t(std::atoi(Arg + 18));
    } else if (std::strcmp(Arg, "--quiet") == 0) {
      Quiet = true;
    } else if (std::strcmp(Arg, "--expr") == 0 && I + 1 < Argc) {
      Source = Argv[++I];
      HaveSource = true;
    } else if (std::strcmp(Arg, "--help") == 0) {
      usage(Argv[0]);
      return 0;
    } else if (Arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", Arg);
      usage(Argv[0]);
      return 2;
    } else {
      std::ifstream In(Arg);
      if (!In) {
        std::fprintf(stderr, "cannot open '%s'\n", Arg);
        return 2;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Source = Buf.str();
      HaveSource = true;
    }
  }
  if (!HaveSource) {
    usage(Argv[0]);
    return 2;
  }

  SeminalReport Report = runSeminalOnSource(Source, Opts);
  if (Report.SyntaxError) {
    std::printf("%s\n", Report.bestMessage().c_str());
    return 1;
  }
  if (Report.InputTypechecks) {
    if (!Quiet)
      std::printf("No type errors.\n");
    return 0;
  }

  if (!Quiet) {
    std::printf("Type-checker:\n  %s\n\n",
                Report.conventionalMessage().c_str());
    std::printf("Suggestions (best first, %zu oracle calls):\n\n",
                Report.OracleCalls);
  }
  if (Report.Suggestions.empty()) {
    std::printf("%s\n", Report.bestMessage().c_str());
    return 1;
  }
  for (size_t I = 0; I < Report.Suggestions.size(); ++I) {
    std::printf("[%zu] %s\n\n", I + 1,
                renderSuggestion(Report.Suggestions[I]).c_str());
    if (Quiet)
      break;
  }
  return 1;
}
